//! MAWI-style transit-link vantage simulator (paper §4, Appendix A.2).
//!
//! The MAWI archive publishes 15-minute daily captures from a transit link
//! of the WIDE network. Unlike the CDN firewall, this vantage
//!
//! - sees ICMPv6 (the CDN's dataset excludes it),
//! - sees traffic on TCP/80 and TCP/443,
//! - carries *real* bidirectional traffic next to the scan probes, and
//! - offers only a 15-minute window per day.
//!
//! [`MawiWorld`] assembles the scanners visible at this vantage:
//!
//! - the paper's **AS#1** heavy scanner (the same source entity as in the
//!   CDN fleet — the cross-vantage confirmation of §4), sweeping downstream
//!   prefixes with structured low-Hamming-weight IIDs; on **2021-05-27** it
//!   probes the public IPv6 hitlist instead (99.2% overlap, far fewer
//!   uniques) and switches from hundreds of ports to six;
//! - the **July 6** ICMPv6 event: 7 sources within one /124 of the AS#3
//!   cybersecurity company;
//! - the **December 24** peak: a single /128 from a US cloud provider
//!   sending ICMPv6 echo requests to a distinct /64 per packet with
//!   uniformly random IIDs (Gaussian Hamming weights);
//! - a recurring population of ICMPv6 and TCP scanners (ICMPv6 scans occur
//!   on most days and often dominate the daily source count);
//! - background cross-traffic with variable packet lengths and repeated
//!   per-destination packets, which the Fukuda–Heidemann entropy and
//!   packets-per-destination criteria must reject.
//!
//! All traffic is generated *within* the daily capture window — the
//! simulator models what the vantage records, not what the sources do
//! around the clock.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod background;
pub mod world;

pub use world::{MawiConfig, MawiWorld};

use lumen6_trace::{DAY_MS, MINUTE_MS};

/// Capture window start offset within a day (14:00 local-equivalent).
pub const WINDOW_START_MS: u64 = 14 * 60 * MINUTE_MS;
/// Capture window length: 15 minutes.
pub const WINDOW_LEN_MS: u64 = 15 * MINUTE_MS;

/// The half-open capture window `[start, end)` of a day.
pub fn capture_window(day: u64) -> (u64, u64) {
    let start = day * DAY_MS + WINDOW_START_MS;
    (start, start + WINDOW_LEN_MS)
}

/// Splits a time-sorted trace into per-day capture slices for
/// `[start_day, end_day)`. Records outside any window are dropped.
pub fn split_days(
    records: &[lumen6_trace::PacketRecord],
    start_day: u64,
    end_day: u64,
) -> Vec<(u64, &[lumen6_trace::PacketRecord])> {
    let mut out = Vec::new();
    for day in start_day..end_day {
        let (s, e) = capture_window(day);
        let lo = records.partition_point(|r| r.ts_ms < s);
        let hi = records.partition_point(|r| r.ts_ms < e);
        out.push((day, &records[lo..hi]));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumen6_trace::PacketRecord;

    #[test]
    fn windows_are_15_minutes() {
        let (s, e) = capture_window(3);
        assert_eq!(e - s, 15 * MINUTE_MS);
        assert_eq!(s % DAY_MS, WINDOW_START_MS);
    }

    #[test]
    fn split_days_partitions() {
        let (s0, _) = capture_window(0);
        let (_s1, e1) = capture_window(1);
        let records = vec![
            PacketRecord::tcp(s0, 1, 2, 1, 22, 60),
            PacketRecord::tcp(s0 + 10, 1, 3, 1, 22, 60),
            PacketRecord::tcp(e1 - 1, 1, 4, 1, 22, 60),
            PacketRecord::tcp(e1, 1, 5, 1, 22, 60), // outside
        ];
        let days = split_days(&records, 0, 3);
        assert_eq!(days.len(), 3);
        assert_eq!(days[0].1.len(), 2);
        assert_eq!(days[1].1.len(), 1);
        assert_eq!(days[2].1.len(), 0);
    }
}
