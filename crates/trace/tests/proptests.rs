//! Property tests: codec round-trip over arbitrary sorted traces, and
//! calendar round-trips.

use lumen6_trace::codec::{decode, encode};
use lumen6_trace::time::{civil_from_days, days_from_civil};
use lumen6_trace::{merge_sorted, PacketRecord, Transport};
use proptest::prelude::*;

fn arb_transport() -> impl Strategy<Value = Transport> {
    prop_oneof![
        Just(Transport::Tcp),
        Just(Transport::Udp),
        Just(Transport::Icmpv6),
        any::<u8>().prop_map(Transport::from_byte),
    ]
}

fn arb_record() -> impl Strategy<Value = (u64, PacketRecord)> {
    (
        0u64..10_000,
        any::<u128>(),
        any::<u128>(),
        arb_transport(),
        any::<u16>(),
        any::<u16>(),
        any::<u16>(),
    )
        .prop_map(|(dt, src, dst, proto, sport, dport, len)| {
            (
                dt,
                PacketRecord {
                    ts_ms: 0,
                    src,
                    dst,
                    proto,
                    sport,
                    dport,
                    len,
                },
            )
        })
}

proptest! {
    #[test]
    fn codec_roundtrip(deltas in proptest::collection::vec(arb_record(), 0..200)) {
        let mut ts = 0u64;
        let recs: Vec<PacketRecord> = deltas
            .into_iter()
            .map(|(dt, mut r)| {
                ts += dt;
                r.ts_ms = ts;
                r
            })
            .collect();
        let bytes = encode(&recs).unwrap();
        prop_assert_eq!(decode(&bytes).unwrap(), recs);
    }

    #[test]
    fn truncation_never_panics(
        deltas in proptest::collection::vec(arb_record(), 1..50),
        cut in 0usize..100,
    ) {
        let mut ts = 0u64;
        let recs: Vec<PacketRecord> = deltas
            .into_iter()
            .map(|(dt, mut r)| {
                ts += dt;
                r.ts_ms = ts;
                r
            })
            .collect();
        let bytes = encode(&recs).unwrap();
        let cut = cut.min(bytes.len());
        // Either a header error or a per-record error; never a panic, and
        // successfully decoded prefix records must match the originals.
        match lumen6_trace::TraceReader::from_bytes(bytes[..cut].to_vec()) {
            Err(_) => {}
            Ok(reader) => {
                for (i, item) in reader.enumerate() {
                    match item {
                        Ok(r) => prop_assert_eq!(r, recs[i]),
                        Err(_) => break,
                    }
                }
            }
        }
    }

    #[test]
    fn civil_date_roundtrip(days in -1_000_000i64..1_000_000) {
        let (y, m, d) = civil_from_days(days);
        prop_assert_eq!(days_from_civil(y, m, d), days);
        prop_assert!((1..=12).contains(&m));
        prop_assert!((1..=31).contains(&d));
    }

    #[test]
    fn merge_sorted_is_sorted_and_complete(
        lens in proptest::collection::vec(proptest::collection::vec(0u64..100, 0..30), 0..6)
    ) {
        let traces: Vec<Vec<PacketRecord>> = lens
            .into_iter()
            .map(|deltas| {
                let mut ts = 0u64;
                deltas
                    .into_iter()
                    .map(|d| {
                        ts += d;
                        PacketRecord::tcp(ts, 1, 2, 1, 22, 60)
                    })
                    .collect()
            })
            .collect();
        let total: usize = traces.iter().map(std::vec::Vec::len).sum();
        let merged = merge_sorted(traces);
        prop_assert_eq!(merged.len(), total);
        prop_assert!(merged.windows(2).all(|w| w[0].ts_ms <= w[1].ts_ms));
    }
}
