//! Packet-record model, binary trace codec, and simulation time utilities.
//!
//! Everything downstream of the traffic generators — the detection pipeline,
//! the analysis modules, the CLI — consumes a stream of [`PacketRecord`]s:
//! the (timestamp, source, destination, transport, ports, length) tuple that
//! a firewall log line or a packet-header capture reduces to. This crate
//! defines that record, a compact binary on-disk format for it
//! ([`codec`]), and the simulation clock ([`time`]): milliseconds since
//! 2021-01-01T00:00:00Z, the start of the paper's measurement window, with a
//! from-scratch proleptic-Gregorian calendar for labeling days and weeks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod codec;
pub mod pcap;
pub mod record;
pub mod source;
pub mod time;

pub use batch::RecordBatch;
pub use codec::{
    decode_chunks, CodecError, StreamingTraceReader, TraceChunks, TracePosition, TraceReader,
    TraceWriter,
};
pub use record::{PacketRecord, Transport};
pub use source::{FileStreamSource, FillOutcome, MaterializedSource, Source, TailSource};
pub use time::{SimTime, DAY_MS, HOUR_MS, MINUTE_MS, WEEK_MS};

/// Sorts records by timestamp (stable), the canonical trace order.
pub fn sort_by_time(records: &mut [PacketRecord]) {
    records.sort_by_key(|r| r.ts_ms);
}

/// Merges multiple traces, each already sorted by timestamp, into one sorted
/// trace. Used to combine per-actor generated traffic into a vantage-point
/// view.
pub fn merge_sorted(traces: Vec<Vec<PacketRecord>>) -> Vec<PacketRecord> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    let total: usize = traces.iter().map(std::vec::Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    // Heap of (next timestamp, trace index, position).
    let mut heap: BinaryHeap<Reverse<(u64, usize, usize)>> = BinaryHeap::new();
    for (i, t) in traces.iter().enumerate() {
        if let Some(r) = t.first() {
            heap.push(Reverse((r.ts_ms, i, 0)));
        }
    }
    while let Some(Reverse((_, i, pos))) = heap.pop() {
        out.push(traces[i][pos]);
        if pos + 1 < traces[i].len() {
            heap.push(Reverse((traces[i][pos + 1].ts_ms, i, pos + 1)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(ts: u64) -> PacketRecord {
        PacketRecord::tcp(ts, 1, 2, 1000, 22, 60)
    }

    #[test]
    fn merge_sorted_interleaves() {
        let a = vec![rec(1), rec(5), rec(9)];
        let b = vec![rec(2), rec(3)];
        let c = vec![];
        let m = merge_sorted(vec![a, b, c]);
        let ts: Vec<u64> = m.iter().map(|r| r.ts_ms).collect();
        assert_eq!(ts, vec![1, 2, 3, 5, 9]);
    }

    #[test]
    fn merge_sorted_empty() {
        assert!(merge_sorted(vec![]).is_empty());
        assert!(merge_sorted(vec![vec![], vec![]]).is_empty());
    }

    #[test]
    fn sort_by_time_orders() {
        let mut v = vec![rec(5), rec(1), rec(3)];
        sort_by_time(&mut v);
        assert_eq!(v.iter().map(|r| r.ts_ms).collect::<Vec<_>>(), vec![1, 3, 5]);
    }
}
