//! Reusable struct-of-arrays record batches for the columnar ingest path.
//!
//! [`decode_chunks`](crate::codec::decode_chunks) materializes a fresh
//! `Vec<PacketRecord>` per chunk; at telescope ingest rates that is one
//! 56-byte-per-record allocation churned per chunk, and the array-of-structs
//! layout wastes cache on stages that touch only a column or two (the
//! detector's grouping pass reads sources; the reorder buffer reads
//! timestamps). A [`RecordBatch`] holds the same records as seven parallel
//! column vectors and is designed to be **reused**: `clear()` keeps the
//! capacity, so a steady-state decode loop allocates nothing.
//!
//! The columns are kept private behind push/get accessors to preserve the
//! equal-length invariant; read-only column slices are exposed for stages
//! that genuinely want columnar access.

use crate::record::{PacketRecord, Transport};

/// A struct-of-arrays batch of packet records (see the module docs).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecordBatch {
    ts_ms: Vec<u64>,
    src: Vec<u128>,
    dst: Vec<u128>,
    proto: Vec<Transport>,
    sport: Vec<u16>,
    dport: Vec<u16>,
    len: Vec<u16>,
}

impl RecordBatch {
    /// An empty batch.
    pub fn new() -> Self {
        RecordBatch::default()
    }

    /// An empty batch with every column pre-sized for `n` records.
    pub fn with_capacity(n: usize) -> Self {
        RecordBatch {
            ts_ms: Vec::with_capacity(n),
            src: Vec::with_capacity(n),
            dst: Vec::with_capacity(n),
            proto: Vec::with_capacity(n),
            sport: Vec::with_capacity(n),
            dport: Vec::with_capacity(n),
            len: Vec::with_capacity(n),
        }
    }

    /// Number of records in the batch.
    pub fn len(&self) -> usize {
        self.ts_ms.len()
    }

    /// Whether the batch holds no records.
    pub fn is_empty(&self) -> bool {
        self.ts_ms.is_empty()
    }

    /// Drops all records but keeps the column capacity (the reuse point).
    pub fn clear(&mut self) {
        self.ts_ms.clear();
        self.src.clear();
        self.dst.clear();
        self.proto.clear();
        self.sport.clear();
        self.dport.clear();
        self.len.clear();
    }

    /// Appends one record.
    pub fn push(&mut self, r: PacketRecord) {
        self.ts_ms.push(r.ts_ms);
        self.src.push(r.src);
        self.dst.push(r.dst);
        self.proto.push(r.proto);
        self.sport.push(r.sport);
        self.dport.push(r.dport);
        self.len.push(r.len);
    }

    /// Appends every record of `other` — seven contiguous column copies,
    /// the fast path of the sharded router when an entire input batch
    /// routes to one shard (run-clustered traffic).
    pub fn extend_from_batch(&mut self, other: &RecordBatch) {
        self.ts_ms.extend_from_slice(&other.ts_ms);
        self.src.extend_from_slice(&other.src);
        self.dst.extend_from_slice(&other.dst);
        self.proto.extend_from_slice(&other.proto);
        self.sport.extend_from_slice(&other.sport);
        self.dport.extend_from_slice(&other.dport);
        self.len.extend_from_slice(&other.len);
    }

    /// Appends the rows of `other` selected by `idxs`, one column at a
    /// time — the scatter primitive of the sharded router, which partitions
    /// one decoded batch into per-shard sub-batches. Gathering per column
    /// keeps every write contiguous (and no `PacketRecord` is materialized
    /// in between). Panics if any index is `>= other.len()`, like slice
    /// indexing.
    pub fn extend_from_indices(&mut self, other: &RecordBatch, idxs: &[u32]) {
        self.ts_ms
            .extend(idxs.iter().map(|&i| other.ts_ms[i as usize]));
        self.src.extend(idxs.iter().map(|&i| other.src[i as usize]));
        self.dst.extend(idxs.iter().map(|&i| other.dst[i as usize]));
        self.proto
            .extend(idxs.iter().map(|&i| other.proto[i as usize]));
        self.sport
            .extend(idxs.iter().map(|&i| other.sport[i as usize]));
        self.dport
            .extend(idxs.iter().map(|&i| other.dport[i as usize]));
        self.len.extend(idxs.iter().map(|&i| other.len[i as usize]));
    }

    /// Reassembles record `i`. Columns are `Copy`, so this is a gather of
    /// seven loads, not an allocation. Panics if `i >= len()`, like slice
    /// indexing.
    #[inline]
    pub fn get(&self, i: usize) -> PacketRecord {
        PacketRecord {
            ts_ms: self.ts_ms[i],
            src: self.src[i],
            dst: self.dst[i],
            proto: self.proto[i],
            sport: self.sport[i],
            dport: self.dport[i],
            len: self.len[i],
        }
    }

    /// Iterates the records in order (reassembled on the fly).
    pub fn iter(&self) -> impl Iterator<Item = PacketRecord> + '_ {
        (0..self.len()).map(|i| self.get(i))
    }

    /// The timestamp column.
    pub fn ts_ms(&self) -> &[u64] {
        &self.ts_ms
    }

    /// The source-address column.
    pub fn src(&self) -> &[u128] {
        &self.src
    }

    /// The destination-address column.
    pub fn dst(&self) -> &[u128] {
        &self.dst
    }
}

impl FromIterator<PacketRecord> for RecordBatch {
    fn from_iter<I: IntoIterator<Item = PacketRecord>>(iter: I) -> Self {
        let iter = iter.into_iter();
        let mut b = RecordBatch::with_capacity(iter.size_hint().0);
        for r in iter {
            b.push(r);
        }
        b
    }
}

impl Extend<PacketRecord> for RecordBatch {
    fn extend<I: IntoIterator<Item = PacketRecord>>(&mut self, iter: I) {
        for r in iter {
            self.push(r);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(i: u64) -> PacketRecord {
        PacketRecord::tcp(
            i,
            0x2001 + u128::from(i),
            0xdd00 + u128::from(i),
            4000,
            22,
            60,
        )
    }

    #[test]
    fn push_get_roundtrips() {
        let mut b = RecordBatch::new();
        for i in 0..10 {
            b.push(rec(i));
        }
        assert_eq!(b.len(), 10);
        for i in 0..10 {
            assert_eq!(b.get(i as usize), rec(i));
        }
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut b = RecordBatch::with_capacity(64);
        for i in 0..64 {
            b.push(rec(i));
        }
        b.clear();
        assert!(b.is_empty());
        assert!(b.ts_ms.capacity() >= 64);
    }

    #[test]
    fn iter_and_from_iterator_match() {
        let recs: Vec<PacketRecord> = (0..20).map(rec).collect();
        let b: RecordBatch = recs.iter().copied().collect();
        let back: Vec<PacketRecord> = b.iter().collect();
        assert_eq!(back, recs);
    }

    #[test]
    fn extend_from_indices_scatters_whole_rows() {
        let recs: Vec<PacketRecord> = (0..12).map(rec).collect();
        let b: RecordBatch = recs.iter().copied().collect();
        let evens: Vec<u32> = (0..b.len() as u32).step_by(2).collect();
        let odds: Vec<u32> = (1..b.len() as u32).step_by(2).collect();
        let mut even = RecordBatch::new();
        let mut odd = RecordBatch::new();
        even.extend_from_indices(&b, &evens);
        odd.extend_from_indices(&b, &odds);
        assert_eq!(even.len() + odd.len(), b.len());
        for (k, &i) in evens.iter().enumerate() {
            assert_eq!(even.get(k), recs[i as usize]);
        }
        for (k, &i) in odds.iter().enumerate() {
            assert_eq!(odd.get(k), recs[i as usize]);
        }
    }

    #[test]
    fn extend_from_batch_appends_all_rows() {
        let a: RecordBatch = (0..5).map(rec).collect();
        let b: RecordBatch = (5..9).map(rec).collect();
        let mut out = RecordBatch::new();
        out.extend_from_batch(&a);
        out.extend_from_batch(&b);
        let back: Vec<PacketRecord> = out.iter().collect();
        let want: Vec<PacketRecord> = (0..9).map(rec).collect();
        assert_eq!(back, want);
    }

    #[test]
    fn columns_expose_soa_view() {
        let mut b = RecordBatch::new();
        b.extend((0..5).map(rec));
        assert_eq!(b.ts_ms(), &[0, 1, 2, 3, 4]);
        assert_eq!(b.src()[3], 0x2001 + 3);
        assert_eq!(b.dst()[4], 0xdd00 + 4);
    }
}
