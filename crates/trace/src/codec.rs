//! Compact binary trace format with streaming reader/writer.
//!
//! Layout:
//!
//! ```text
//! magic  b"L6TR"          4 bytes
//! version u8              currently 1
//! record*:
//!   delta_ts  varint      ms since previous record (first: since 0)
//!   src       16 bytes    big-endian u128
//!   dst       16 bytes    big-endian u128
//!   proto     1 byte      IP next-header value
//!   sport     varint
//!   dport     varint
//!   len       varint
//! ```
//!
//! Timestamps must be non-decreasing (delta encoding); the writer enforces
//! this. Varints are LEB128 (7 bits per byte). The format is intentionally
//! simple: a 439-day scaled trace (a few million records) encodes in tens of
//! MB and reads back at memory bandwidth.

use crate::batch::RecordBatch;
use crate::record::{PacketRecord, Transport};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use lumen6_obs::MetricsRegistry;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::io::{self, Read, Write};

/// Locally accumulated decode telemetry, flushed to the global
/// [`MetricsRegistry`] when the owning reader drops — per-record cost is a
/// plain `u64` increment, with zero atomic operations on the hot path.
#[derive(Debug, Default)]
struct DecodeStats {
    records: u64,
    bytes: u64,
    refills: u64,
}

impl DecodeStats {
    fn flush(&mut self) {
        let reg = MetricsRegistry::global();
        if self.records > 0 {
            reg.counter("trace.codec.records_decoded").add(self.records);
        }
        if self.bytes > 0 {
            reg.counter("trace.codec.bytes_read").add(self.bytes);
        }
        if self.refills > 0 {
            reg.counter("trace.codec.refills").add(self.refills);
        }
        // Zero field-by-field: `*self = default()` would drop the old value
        // and recurse through this Drop impl.
        self.records = 0;
        self.bytes = 0;
        self.refills = 0;
    }
}

impl Drop for DecodeStats {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Counts one decode error under `trace.codec.errors.<variant>`. Errors are
/// rare, so these hit the global registry directly.
fn note_decode_error(e: &CodecError) {
    MetricsRegistry::global()
        .counter(&format!("trace.codec.errors.{}", e.kind()))
        .inc();
}

/// File magic.
pub const MAGIC: &[u8; 4] = b"L6TR";
/// Current format version.
pub const VERSION: u8 = 1;

/// Errors from decoding a trace stream.
#[derive(Debug)]
pub enum CodecError {
    /// Stream did not start with the `L6TR` magic.
    BadMagic([u8; 4]),
    /// Unsupported format version.
    BadVersion(u8),
    /// Stream ended in the middle of a record.
    Truncated,
    /// A varint exceeded 64 bits.
    VarintOverflow,
    /// A varint-decoded port or length exceeded its field width.
    FieldOverflow(&'static str, u64),
    /// Underlying I/O error.
    Io(io::Error),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::BadMagic(m) => write!(f, "bad magic {m:?} (expected \"L6TR\")"),
            CodecError::BadVersion(v) => write!(f, "unsupported trace version {v}"),
            CodecError::Truncated => write!(f, "trace stream truncated mid-record"),
            CodecError::VarintOverflow => write!(f, "varint exceeds 64 bits"),
            CodecError::FieldOverflow(name, v) => write!(f, "field {name} out of range: {v}"),
            CodecError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl CodecError {
    /// Stable machine-readable error-kind label, used for per-kind
    /// quarantine and metrics counters (`trace.codec.errors.<kind>`).
    pub fn kind(&self) -> &'static str {
        match self {
            CodecError::BadMagic(_) => "bad_magic",
            CodecError::BadVersion(_) => "bad_version",
            CodecError::Truncated => "truncated",
            CodecError::VarintOverflow => "varint_overflow",
            CodecError::FieldOverflow(..) => "field_overflow",
            CodecError::Io(_) => "io",
        }
    }

    /// Whether decoding can continue past this error. Only
    /// [`CodecError::FieldOverflow`] is record-local: every field of the
    /// offending record was consumed before validation failed, so the next
    /// record starts at a known offset. Framing errors (truncation, varint
    /// overflow, I/O) leave the stream position unknowable.
    pub fn is_recoverable(&self) -> bool {
        matches!(self, CodecError::FieldOverflow(..))
    }
}

impl std::error::Error for CodecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CodecError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CodecError {
    fn from(e: io::Error) -> Self {
        CodecError::Io(e)
    }
}

fn put_varint(buf: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

fn get_varint(buf: &mut Bytes) -> Result<u64, CodecError> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        if !buf.has_remaining() {
            return Err(CodecError::Truncated);
        }
        let byte = buf.get_u8();
        if shift >= 64 || (shift == 63 && byte > 1) {
            return Err(CodecError::VarintOverflow);
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Streaming writer for the `L6TR` format.
///
/// Records must be appended in non-decreasing timestamp order; `append`
/// panics otherwise (a programming error — traces are canonical-sorted).
pub struct TraceWriter<W: Write> {
    sink: W,
    buf: BytesMut,
    prev_ts: u64,
    count: u64,
}

impl<W: Write> TraceWriter<W> {
    /// Creates a writer and emits the header.
    pub fn new(mut sink: W) -> Result<Self, CodecError> {
        sink.write_all(MAGIC)?;
        sink.write_all(&[VERSION])?;
        Ok(TraceWriter {
            sink,
            buf: BytesMut::with_capacity(64 * 1024),
            prev_ts: 0,
            count: 0,
        })
    }

    /// Appends one record.
    pub fn append(&mut self, r: &PacketRecord) -> Result<(), CodecError> {
        assert!(
            r.ts_ms >= self.prev_ts,
            "trace records must be time-sorted: {} < {}",
            r.ts_ms,
            self.prev_ts
        );
        put_varint(&mut self.buf, r.ts_ms - self.prev_ts);
        self.prev_ts = r.ts_ms;
        self.buf.put_u128(r.src);
        self.buf.put_u128(r.dst);
        self.buf.put_u8(r.proto.to_byte());
        put_varint(&mut self.buf, u64::from(r.sport));
        put_varint(&mut self.buf, u64::from(r.dport));
        put_varint(&mut self.buf, u64::from(r.len));
        self.count += 1;
        if self.buf.len() >= 60 * 1024 {
            self.sink.write_all(&self.buf)?;
            self.buf.clear();
        }
        Ok(())
    }

    /// Number of records appended so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Flushes buffered records and returns the sink.
    pub fn finish(mut self) -> Result<W, CodecError> {
        self.sink.write_all(&self.buf)?;
        self.sink.flush()?;
        Ok(self.sink)
    }
}

/// Encodes a whole slice to an in-memory buffer.
pub fn encode(records: &[PacketRecord]) -> Result<Vec<u8>, CodecError> {
    let mut w = TraceWriter::new(Vec::new())?;
    for r in records {
        w.append(r)?;
    }
    w.finish()
}

/// Streaming reader: an iterator of `Result<PacketRecord, CodecError>`.
///
/// Reads the whole source eagerly into memory (traces are modest) then
/// decodes incrementally; decode errors surface on the failing record.
#[derive(Debug)]
pub struct TraceReader {
    buf: Bytes,
    prev_ts: u64,
    failed: bool,
    stats: DecodeStats,
}

impl TraceReader {
    /// Creates a reader over an in-memory buffer, validating the header.
    pub fn from_bytes(data: impl Into<Bytes>) -> Result<Self, CodecError> {
        let mut buf: Bytes = data.into();
        let total_bytes = buf.remaining() as u64;
        if buf.remaining() < 5 {
            let e = CodecError::Truncated;
            note_decode_error(&e);
            return Err(e);
        }
        let mut magic = [0u8; 4];
        buf.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            let e = CodecError::BadMagic(magic);
            note_decode_error(&e);
            return Err(e);
        }
        let version = buf.get_u8();
        if version != VERSION {
            let e = CodecError::BadVersion(version);
            note_decode_error(&e);
            return Err(e);
        }
        Ok(TraceReader {
            buf,
            prev_ts: 0,
            failed: false,
            stats: DecodeStats {
                bytes: total_bytes,
                ..DecodeStats::default()
            },
        })
    }

    /// Creates a reader from any `Read` source (e.g. a file).
    pub fn from_reader<R: Read>(mut src: R) -> Result<Self, CodecError> {
        let mut data = Vec::new();
        src.read_to_end(&mut data)?;
        Self::from_bytes(data)
    }

    fn next_record(&mut self) -> Result<Option<PacketRecord>, CodecError> {
        if !self.buf.has_remaining() {
            return Ok(None);
        }
        let delta = get_varint(&mut self.buf)?;
        if self.buf.remaining() < 33 {
            return Err(CodecError::Truncated);
        }
        let src = self.buf.get_u128();
        let dst = self.buf.get_u128();
        let proto = Transport::from_byte(self.buf.get_u8());
        let sport = get_varint(&mut self.buf)?;
        let dport = get_varint(&mut self.buf)?;
        let len = get_varint(&mut self.buf)?;
        if sport > u64::from(u16::MAX) {
            return Err(CodecError::FieldOverflow("sport", sport));
        }
        if dport > u64::from(u16::MAX) {
            return Err(CodecError::FieldOverflow("dport", dport));
        }
        if len > u64::from(u16::MAX) {
            return Err(CodecError::FieldOverflow("len", len));
        }
        self.prev_ts += delta;
        Ok(Some(PacketRecord {
            ts_ms: self.prev_ts,
            src,
            dst,
            proto,
            sport: sport as u16,
            dport: dport as u16,
            len: len as u16,
        }))
    }
}

impl Iterator for TraceReader {
    type Item = Result<PacketRecord, CodecError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        match self.next_record() {
            Ok(Some(r)) => {
                self.stats.records += 1;
                Some(Ok(r))
            }
            Ok(None) => None,
            Err(e) => {
                self.failed = true;
                note_decode_error(&e);
                Some(Err(e))
            }
        }
    }
}

/// Decodes a whole buffer, failing on the first malformed record.
pub fn decode(data: &[u8]) -> Result<Vec<PacketRecord>, CodecError> {
    TraceReader::from_bytes(data.to_vec())?.collect()
}

/// Upper bound on one encoded record: 10-byte timestamp varint, two 16-byte
/// addresses, protocol byte, and three ≤3-byte port/length varints.
pub(crate) const MAX_RECORD_LEN: usize = 10 + 16 + 16 + 1 + 3 * 3;

/// Refill granularity of the streaming reader.
const STREAM_BUF_LEN: usize = 64 * 1024;

fn slice_varint(data: &[u8], pos: &mut usize) -> Result<u64, CodecError> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let Some(&byte) = data.get(*pos) else {
            return Err(CodecError::Truncated);
        };
        *pos += 1;
        if shift >= 64 || (shift == 63 && byte > 1) {
            return Err(CodecError::VarintOverflow);
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

fn slice_u128(data: &[u8], pos: &mut usize) -> Result<u128, CodecError> {
    let end = *pos + 16;
    let bytes = data.get(*pos..end).ok_or(CodecError::Truncated)?;
    *pos = end;
    // The `.get` above guarantees 16 bytes; map the impossible length
    // mismatch to Truncated rather than carrying a panic path.
    let arr: [u8; 16] = bytes.try_into().map_err(|_| CodecError::Truncated)?;
    Ok(u128::from_be_bytes(arr))
}

/// Decodes one record from `data` at `*pos`, delta-decoding its timestamp
/// against `*prev_ts`. On success the cursor and the timestamp base both
/// advance past the record. [`CodecError::FieldOverflow`] also advances
/// them (every field of the offending record was consumed before range
/// validation failed), so permissive callers can skip the record and stay
/// aligned — the same contract [`StreamingTraceReader`] relies on. Framing
/// errors (`Truncated`, `VarintOverflow`) leave both untouched, so a
/// tailing caller can retry the same boundary once more bytes arrive.
pub(crate) fn decode_record_at(
    data: &[u8],
    pos: &mut usize,
    prev_ts: &mut u64,
) -> Result<PacketRecord, CodecError> {
    let mut p = *pos;
    let delta = slice_varint(data, &mut p)?;
    let src = slice_u128(data, &mut p)?;
    let dst = slice_u128(data, &mut p)?;
    let proto = Transport::from_byte(*data.get(p).ok_or(CodecError::Truncated)?);
    p += 1;
    let sport = slice_varint(data, &mut p)?;
    let dport = slice_varint(data, &mut p)?;
    let len = slice_varint(data, &mut p)?;
    *pos = p;
    *prev_ts += delta;
    if sport > u64::from(u16::MAX) {
        return Err(CodecError::FieldOverflow("sport", sport));
    }
    if dport > u64::from(u16::MAX) {
        return Err(CodecError::FieldOverflow("dport", dport));
    }
    if len > u64::from(u16::MAX) {
        return Err(CodecError::FieldOverflow("len", len));
    }
    Ok(PacketRecord {
        ts_ms: *prev_ts,
        src,
        dst,
        proto,
        sport: sport as u16,
        dport: dport as u16,
        len: len as u16,
    })
}

/// A resumable decode position inside an `L6TR` stream: the byte offset of
/// the next un-decoded record plus the delta-decoding state at that point.
/// Recorded in session checkpoints so a killed run can reopen the trace,
/// [`StreamingTraceReader::resume`] at this position, and continue decoding
/// mid-file as if never interrupted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TracePosition {
    /// Absolute byte offset of the next record (header included in count).
    pub offset: u64,
    /// Timestamp of the record preceding `offset` (delta-decode base).
    pub prev_ts: u64,
}

/// Streaming `L6TR` reader over any [`Read`] source in bounded memory.
///
/// Unlike [`TraceReader::from_reader`], which materializes the whole file,
/// this keeps only a refill window of [`STREAM_BUF_LEN`] bytes plus at most
/// one partial record, so decoding a multi-gigabyte trace costs the same
/// memory as decoding a kilobyte one. Yields
/// `Result<PacketRecord, CodecError>` and fuses after the first error —
/// unless [`permissive`](Self::permissive) mode is on, in which case
/// record-local errors ([`CodecError::is_recoverable`]) are skipped and
/// counted instead of ending the stream.
#[derive(Debug)]
pub struct StreamingTraceReader<R: Read> {
    src: R,
    buf: Vec<u8>,
    pos: usize,
    eof: bool,
    prev_ts: u64,
    failed: bool,
    /// Total bytes pulled from `src`, header included.
    fed: u64,
    /// Skip recoverable per-record errors instead of fusing.
    permissive: bool,
    /// Records skipped in permissive mode.
    skipped: u64,
    stats: DecodeStats,
}

impl<R: Read> StreamingTraceReader<R> {
    /// Validates the header and prepares for streaming decode.
    pub fn new(mut src: R) -> Result<Self, CodecError> {
        let mut header = [0u8; 5];
        read_exactly(&mut src, &mut header).inspect_err(note_decode_error)?;
        let magic = [header[0], header[1], header[2], header[3]];
        if &magic != MAGIC {
            let e = CodecError::BadMagic(magic);
            note_decode_error(&e);
            return Err(e);
        }
        if header[4] != VERSION {
            let e = CodecError::BadVersion(header[4]);
            note_decode_error(&e);
            return Err(e);
        }
        Ok(Self::raw(src, header.len() as u64, 0))
    }

    /// Resumes decoding mid-stream at a [`TracePosition`] previously taken
    /// with [`position`](Self::position). Seeks `src` to the recorded byte
    /// offset and restores the delta-decode state; the header is not
    /// re-validated (the position can only have come from a successful
    /// decode of the same stream).
    pub fn resume(mut src: R, at: TracePosition) -> Result<Self, CodecError>
    where
        R: io::Seek,
    {
        src.seek(io::SeekFrom::Start(at.offset))?;
        Ok(Self::raw(src, at.offset, at.prev_ts))
    }

    fn raw(src: R, fed: u64, prev_ts: u64) -> Self {
        StreamingTraceReader {
            src,
            buf: Vec::with_capacity(STREAM_BUF_LEN + MAX_RECORD_LEN),
            pos: 0,
            eof: false,
            prev_ts,
            failed: false,
            fed,
            permissive: false,
            skipped: 0,
            stats: DecodeStats {
                bytes: fed,
                ..DecodeStats::default()
            },
        }
    }

    /// Enables or disables permissive mode: recoverable per-record errors
    /// (field overflows) are skipped — counted in [`skipped`](Self::skipped)
    /// and under `trace.codec.skipped.<kind>` — instead of fusing the
    /// iterator. Framing errors still end the stream.
    pub fn permissive(mut self, yes: bool) -> Self {
        self.permissive = yes;
        self
    }

    /// Records skipped so far in permissive mode.
    pub fn skipped(&self) -> u64 {
        self.skipped
    }

    /// The current decode position: byte offset of the next un-decoded
    /// record and the timestamp base it will be delta-decoded against.
    /// Valid input to [`resume`](Self::resume) on a fresh reader over the
    /// same stream.
    pub fn position(&self) -> TracePosition {
        TracePosition {
            offset: self.fed - (self.buf.len() - self.pos) as u64,
            prev_ts: self.prev_ts,
        }
    }

    /// Ensures a whole record's worth of bytes is buffered unless the source
    /// is exhausted, sliding the unconsumed tail to the front first. Reads
    /// land directly in the reused window buffer — no intermediate stack
    /// array, no per-refill allocation.
    fn refill(&mut self) -> Result<(), CodecError> {
        let tail = self.buf.len() - self.pos;
        self.buf.copy_within(self.pos.., 0);
        self.buf.truncate(tail);
        self.pos = 0;
        self.stats.refills += 1;
        while !self.eof && self.buf.len() < MAX_RECORD_LEN {
            let old = self.buf.len();
            self.buf.resize(old + STREAM_BUF_LEN, 0);
            let n = match self.src.read(&mut self.buf[old..]) {
                Ok(n) => n,
                Err(e) => {
                    // Keep `position()` consistent: drop the zeroed tail
                    // before surfacing the error.
                    self.buf.truncate(old);
                    return Err(e.into());
                }
            };
            self.buf.truncate(old + n);
            if n == 0 {
                self.eof = true;
            } else {
                self.stats.bytes += n as u64;
                self.fed += n as u64;
            }
        }
        Ok(())
    }

    fn next_record(&mut self) -> Result<Option<PacketRecord>, CodecError> {
        if self.buf.len() - self.pos < MAX_RECORD_LEN && !self.eof {
            self.refill()?;
        }
        if self.pos == self.buf.len() {
            return Ok(None);
        }
        // At least MAX_RECORD_LEN bytes remain, or the source hit EOF: any
        // out-of-bytes condition below is genuine truncation.
        let data = &self.buf[..];
        let mut pos = self.pos;
        let delta = slice_varint(data, &mut pos)?;
        let src = slice_u128(data, &mut pos)?;
        let dst = slice_u128(data, &mut pos)?;
        let proto = Transport::from_byte(*data.get(pos).ok_or(CodecError::Truncated)?);
        pos += 1;
        let sport = slice_varint(data, &mut pos)?;
        let dport = slice_varint(data, &mut pos)?;
        let len = slice_varint(data, &mut pos)?;
        // All fields are consumed: commit the position and timestamp base
        // before validation, so a field-overflow error leaves the reader
        // aligned on the next record (what permissive skip relies on).
        self.pos = pos;
        self.prev_ts += delta;
        if sport > u64::from(u16::MAX) {
            return Err(CodecError::FieldOverflow("sport", sport));
        }
        if dport > u64::from(u16::MAX) {
            return Err(CodecError::FieldOverflow("dport", dport));
        }
        if len > u64::from(u16::MAX) {
            return Err(CodecError::FieldOverflow("len", len));
        }
        Ok(Some(PacketRecord {
            ts_ms: self.prev_ts,
            src,
            dst,
            proto,
            sport: sport as u16,
            dport: dport as u16,
            len: len as u16,
        }))
    }
}

fn read_exactly<R: Read>(src: &mut R, out: &mut [u8]) -> Result<(), CodecError> {
    match src.read_exact(out) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => Err(CodecError::Truncated),
        Err(e) => Err(e.into()),
    }
}

impl<R: Read> Iterator for StreamingTraceReader<R> {
    type Item = Result<PacketRecord, CodecError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        loop {
            match self.next_record() {
                Ok(Some(r)) => {
                    self.stats.records += 1;
                    return Some(Ok(r));
                }
                Ok(None) => return None,
                Err(e) if self.permissive && e.is_recoverable() => {
                    self.skipped += 1;
                    MetricsRegistry::global()
                        .counter(&format!("trace.codec.skipped.{}", e.kind()))
                        .inc();
                    continue;
                }
                Err(e) => {
                    self.failed = true;
                    note_decode_error(&e);
                    return Some(Err(e));
                }
            }
        }
    }
}

/// Streams a trace as chunks of at most `chunk_len` records, decoding from
/// `src` incrementally so peak memory is `O(chunk_len)`, not trace size.
///
/// Each item is one chunk; a decode error surfaces as the final item after
/// the records that preceded it (possibly as a partial chunk), and the
/// iterator fuses.
pub fn decode_chunks<R: Read>(src: R, chunk_len: usize) -> Result<TraceChunks<R>, CodecError> {
    Ok(TraceChunks {
        inner: StreamingTraceReader::new(src)?,
        chunk_len: chunk_len.max(1),
        pending_err: None,
        done: false,
    })
}

/// Iterator returned by [`decode_chunks`].
#[derive(Debug)]
pub struct TraceChunks<R: Read> {
    inner: StreamingTraceReader<R>,
    chunk_len: usize,
    pending_err: Option<CodecError>,
    done: bool,
}

impl<R: Read> TraceChunks<R> {
    /// The decode position after the most recently yielded chunk: the byte
    /// offset and timestamp base of the first record of the *next* chunk.
    /// Checkpointing at a chunk boundary records this so decode can
    /// [`resume`](StreamingTraceReader::resume) mid-file.
    pub fn position(&self) -> TracePosition {
        self.inner.position()
    }

    /// Permissive-mode passthrough (see
    /// [`StreamingTraceReader::permissive`]).
    pub fn permissive(mut self, yes: bool) -> Self {
        self.inner = self.inner.permissive(yes);
        self
    }

    /// Records skipped by the underlying reader in permissive mode.
    pub fn skipped(&self) -> u64 {
        self.inner.skipped()
    }

    /// Zero-copy variant of the chunk iterator: decodes the next chunk of
    /// at most `chunk_len` records into `out` (cleared first), reusing its
    /// column capacity so a steady-state decode loop allocates nothing.
    ///
    /// Returns `None` at clean end of stream, `Some(Ok(()))` when `out`
    /// holds at least one record, and `Some(Err(_))` for a decode error —
    /// with the same error placement as the allocating iterator: records
    /// decoded before the error are yielded first as a final partial batch,
    /// then the error, then the stream fuses.
    pub fn next_batch(&mut self, out: &mut RecordBatch) -> Option<Result<(), CodecError>> {
        out.clear();
        if self.done {
            return None;
        }
        if let Some(e) = self.pending_err.take() {
            self.done = true;
            return Some(Err(e));
        }
        while out.len() < self.chunk_len {
            match self.inner.next() {
                Some(Ok(r)) => out.push(r),
                Some(Err(e)) => {
                    if out.is_empty() {
                        self.done = true;
                        return Some(Err(e));
                    }
                    self.pending_err = Some(e);
                    return Some(Ok(()));
                }
                None => {
                    self.done = true;
                    if out.is_empty() {
                        return None;
                    }
                    return Some(Ok(()));
                }
            }
        }
        Some(Ok(()))
    }
}

impl<R: Read> Iterator for TraceChunks<R> {
    type Item = Result<Vec<PacketRecord>, CodecError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        if let Some(e) = self.pending_err.take() {
            self.done = true;
            return Some(Err(e));
        }
        let mut chunk = Vec::with_capacity(self.chunk_len);
        while chunk.len() < self.chunk_len {
            match self.inner.next() {
                Some(Ok(r)) => chunk.push(r),
                Some(Err(e)) => {
                    if chunk.is_empty() {
                        self.done = true;
                        return Some(Err(e));
                    }
                    self.pending_err = Some(e);
                    return Some(Ok(chunk));
                }
                None => {
                    self.done = true;
                    if chunk.is_empty() {
                        return None;
                    }
                    return Some(Ok(chunk));
                }
            }
        }
        Some(Ok(chunk))
    }
}

/// Shared fixtures for codec-level tests in this crate.
#[cfg(test)]
pub(crate) mod tests_support {
    use super::*;

    /// Encodes one record with an out-of-range dport varint (recoverable
    /// field overflow) surrounded by good records. Returns the encoded
    /// bytes and the records a permissive decoder should deliver.
    pub(crate) fn bytes_with_bad_dport() -> (Vec<u8>, Vec<PacketRecord>) {
        let good: Vec<PacketRecord> = (0..10u64)
            .map(|i| PacketRecord::tcp(i * 100, 1, 0xd0 + i as u128, 1, 22, 60))
            .collect();
        let mut buf = BytesMut::with_capacity(1024);
        let mut out = MAGIC.to_vec();
        out.push(VERSION);
        let mut prev = 0u64;
        for (i, r) in good.iter().enumerate() {
            put_varint(&mut buf, r.ts_ms - prev);
            prev = r.ts_ms;
            buf.put_u128(r.src);
            buf.put_u128(r.dst);
            buf.put_u8(r.proto.to_byte());
            put_varint(&mut buf, u64::from(r.sport));
            // Record 5 claims dport 70_000: decodes, fails range validation.
            put_varint(&mut buf, if i == 5 { 70_000 } else { u64::from(r.dport) });
            put_varint(&mut buf, u64::from(r.len));
        }
        out.extend_from_slice(&buf);
        let expected: Vec<PacketRecord> = good
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != 5)
            .map(|(_, r)| *r)
            .collect();
        (out, expected)
    }
}

#[cfg(test)]
mod tests {
    use super::tests_support::bytes_with_bad_dport;
    use super::*;

    fn sample() -> Vec<PacketRecord> {
        vec![
            PacketRecord::tcp(0, 10, 20, 40000, 22, 60),
            PacketRecord::tcp(5, u128::MAX, 0, 65535, 65535, 65535),
            PacketRecord::udp(5, 1, 2, 500, 500, 120),
            PacketRecord::icmpv6_echo(1_000_000, 3, 4, 96),
        ]
    }

    #[test]
    fn roundtrip() {
        let recs = sample();
        let bytes = encode(&recs).unwrap();
        assert_eq!(decode(&bytes).unwrap(), recs);
    }

    #[test]
    fn empty_trace_roundtrips() {
        let bytes = encode(&[]).unwrap();
        assert_eq!(bytes.len(), 5);
        assert!(decode(&bytes).unwrap().is_empty());
    }

    #[test]
    fn bad_magic_rejected() {
        let err = TraceReader::from_bytes(b"NOPE\x01".to_vec()).unwrap_err();
        assert!(matches!(err, CodecError::BadMagic(_)));
    }

    #[test]
    fn bad_version_rejected() {
        let err = TraceReader::from_bytes(b"L6TR\x63".to_vec()).unwrap_err();
        assert!(matches!(err, CodecError::BadVersion(0x63)));
    }

    #[test]
    fn truncated_header_rejected() {
        assert!(matches!(
            TraceReader::from_bytes(b"L6T".to_vec()).unwrap_err(),
            CodecError::Truncated
        ));
    }

    #[test]
    fn truncated_record_surfaces_error_once() {
        let bytes = encode(&sample()).unwrap();
        let cut = &bytes[..bytes.len() - 3];
        let mut reader = TraceReader::from_bytes(cut.to_vec()).unwrap();
        let mut errs = 0;
        let mut oks = 0;
        for item in reader.by_ref() {
            match item {
                Ok(_) => oks += 1,
                Err(_) => errs += 1,
            }
        }
        assert_eq!(errs, 1, "exactly one error then stop");
        assert_eq!(oks, 3, "records before the cut decode fine");
        assert!(reader.next().is_none(), "iterator is fused after error");
    }

    #[test]
    #[should_panic(expected = "time-sorted")]
    fn writer_rejects_time_regression() {
        let mut w = TraceWriter::new(Vec::new()).unwrap();
        w.append(&PacketRecord::tcp(10, 1, 2, 1, 22, 60)).unwrap();
        w.append(&PacketRecord::tcp(9, 1, 2, 1, 22, 60)).unwrap();
    }

    #[test]
    fn varint_boundaries() {
        let mut recs = Vec::new();
        let mut ts = 0;
        for delta in [0u64, 1, 127, 128, 16383, 16384, u32::MAX as u64] {
            ts += delta;
            recs.push(PacketRecord::tcp(ts, 7, 8, 0, 0, 0));
        }
        let bytes = encode(&recs).unwrap();
        assert_eq!(decode(&bytes).unwrap(), recs);
    }

    #[test]
    fn garbage_after_header_is_an_error_not_a_panic() {
        let mut bytes = b"L6TR\x01".to_vec();
        bytes.extend_from_slice(&[0xff; 7]); // endless varint + truncation
        let reader = TraceReader::from_bytes(bytes).unwrap();
        let items: Vec<_> = reader.collect();
        assert_eq!(items.len(), 1);
        assert!(items[0].is_err());
    }

    #[test]
    fn from_reader_reads_files() {
        let bytes = encode(&sample()).unwrap();
        let reader = TraceReader::from_reader(&bytes[..]).unwrap();
        let recs: Result<Vec<_>, _> = reader.collect();
        assert_eq!(recs.unwrap(), sample());
    }

    #[test]
    fn writer_counts() {
        let mut w = TraceWriter::new(Vec::new()).unwrap();
        for r in sample() {
            w.append(&r).unwrap();
        }
        assert_eq!(w.count(), 4);
    }

    /// A reader that returns at most `cap` bytes per `read` call, to
    /// exercise partial-read refill paths.
    struct Dribble<'a> {
        data: &'a [u8],
        cap: usize,
    }

    impl Read for Dribble<'_> {
        fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
            let n = self.data.len().min(self.cap).min(out.len());
            out[..n].copy_from_slice(&self.data[..n]);
            self.data = &self.data[n..];
            Ok(n)
        }
    }

    #[test]
    fn streaming_matches_materialized() {
        let recs: Vec<PacketRecord> = (0..10_000u64)
            .map(|i| PacketRecord::tcp(i * 3, i as u128, (i * 7) as u128, 1, 22, 60))
            .collect();
        let bytes = encode(&recs).unwrap();
        let streamed: Result<Vec<_>, _> = StreamingTraceReader::new(&bytes[..]).unwrap().collect();
        assert_eq!(streamed.unwrap(), recs);
        // Same through a source that trickles 7 bytes at a time, forcing
        // records to span refill boundaries.
        let dribbled: Result<Vec<_>, _> = StreamingTraceReader::new(Dribble {
            data: &bytes,
            cap: 7,
        })
        .unwrap()
        .collect();
        assert_eq!(dribbled.unwrap(), recs);
    }

    #[test]
    fn streaming_rejects_bad_header() {
        assert!(matches!(
            StreamingTraceReader::new(&b"NOPE\x01"[..]).unwrap_err(),
            CodecError::BadMagic(_)
        ));
        assert!(matches!(
            StreamingTraceReader::new(&b"L6T"[..]).unwrap_err(),
            CodecError::Truncated
        ));
        assert!(matches!(
            StreamingTraceReader::new(&b"L6TR\x63"[..]).unwrap_err(),
            CodecError::BadVersion(0x63)
        ));
    }

    #[test]
    fn streaming_truncation_surfaces_error_once() {
        let bytes = encode(&sample()).unwrap();
        let cut = &bytes[..bytes.len() - 3];
        let mut reader = StreamingTraceReader::new(cut).unwrap();
        let (mut oks, mut errs) = (0, 0);
        for item in reader.by_ref() {
            match item {
                Ok(_) => oks += 1,
                Err(_) => errs += 1,
            }
        }
        assert_eq!((oks, errs), (3, 1));
        assert!(reader.next().is_none(), "fused after error");
    }

    #[test]
    fn decode_chunks_partitions_exactly() {
        let recs: Vec<PacketRecord> = (0..1_000u64)
            .map(|i| PacketRecord::udp(i, i as u128, 9, 1, 53, 80))
            .collect();
        let bytes = encode(&recs).unwrap();
        let chunks: Vec<Vec<PacketRecord>> = decode_chunks(&bytes[..], 300)
            .unwrap()
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(
            chunks.iter().map(Vec::len).collect::<Vec<_>>(),
            vec![300, 300, 300, 100]
        );
        assert_eq!(chunks.concat(), recs);
    }

    #[test]
    fn decode_chunks_error_after_partial_chunk() {
        let bytes = encode(&sample()).unwrap();
        let cut = &bytes[..bytes.len() - 3];
        let items: Vec<_> = decode_chunks(cut, 100).unwrap().collect();
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].as_ref().unwrap().len(), 3);
        assert!(items[1].is_err());
    }

    #[test]
    fn decode_chunks_empty_trace() {
        let bytes = encode(&[]).unwrap();
        assert_eq!(decode_chunks(&bytes[..], 10).unwrap().count(), 0);
    }

    #[test]
    fn position_resume_matches_full_decode() {
        let recs: Vec<PacketRecord> = (0..5_000u64)
            .map(|i| PacketRecord::tcp(i * 11, i as u128, (i * 3) as u128, 1, 22, 60))
            .collect();
        let bytes = encode(&recs).unwrap();
        // Decode the first half, record the position, resume in a fresh
        // reader over a cursor, and check the concatenation is exact.
        let mut first = StreamingTraceReader::new(io::Cursor::new(bytes.clone())).unwrap();
        let mut head: Vec<PacketRecord> = Vec::new();
        for _ in 0..2_500 {
            head.push(first.next().unwrap().unwrap());
        }
        let pos = first.position();
        assert_eq!(pos.prev_ts, head.last().unwrap().ts_ms);
        drop(first);
        let tail: Result<Vec<_>, _> = StreamingTraceReader::resume(io::Cursor::new(bytes), pos)
            .unwrap()
            .collect();
        head.extend(tail.unwrap());
        assert_eq!(head, recs);
    }

    #[test]
    fn position_at_eof_is_stream_length() {
        let bytes = encode(&sample()).unwrap();
        let mut r = StreamingTraceReader::new(&bytes[..]).unwrap();
        while r.next().is_some() {}
        assert_eq!(r.position().offset, bytes.len() as u64);
    }

    #[test]
    fn chunks_position_resumes_at_chunk_boundary() {
        let recs: Vec<PacketRecord> = (0..900u64)
            .map(|i| PacketRecord::udp(i * 2, i as u128, 5, 1, 53, 80))
            .collect();
        let bytes = encode(&recs).unwrap();
        let mut chunks = decode_chunks(io::Cursor::new(bytes.clone()), 400).unwrap();
        let first = chunks.next().unwrap().unwrap();
        assert_eq!(first.len(), 400);
        let pos = chunks.position();
        drop(chunks);
        let rest: Result<Vec<_>, _> = StreamingTraceReader::resume(io::Cursor::new(bytes), pos)
            .unwrap()
            .collect();
        let mut all = first;
        all.extend(rest.unwrap());
        assert_eq!(all, recs);
    }

    #[test]
    fn strict_mode_fuses_on_field_overflow() {
        let (bytes, _) = bytes_with_bad_dport();
        let items: Vec<_> = StreamingTraceReader::new(&bytes[..]).unwrap().collect();
        assert_eq!(items.len(), 6, "five good records then the error");
        assert!(matches!(
            items.last().unwrap(),
            Err(CodecError::FieldOverflow("dport", 70_000))
        ));
    }

    #[test]
    fn permissive_mode_skips_field_overflow() {
        let (bytes, expected) = bytes_with_bad_dport();
        let mut r = StreamingTraceReader::new(&bytes[..])
            .unwrap()
            .permissive(true);
        let got: Result<Vec<_>, _> = r.by_ref().collect();
        assert_eq!(got.unwrap(), expected);
        assert_eq!(r.skipped(), 1);
    }

    #[test]
    fn permissive_mode_still_fuses_on_truncation() {
        let bytes = encode(&sample()).unwrap();
        let cut = &bytes[..bytes.len() - 3];
        let mut r = StreamingTraceReader::new(cut).unwrap().permissive(true);
        let (mut oks, mut errs) = (0, 0);
        for item in r.by_ref() {
            match item {
                Ok(_) => oks += 1,
                Err(e) => {
                    assert!(!e.is_recoverable());
                    errs += 1;
                }
            }
        }
        assert_eq!((oks, errs), (3, 1));
        assert_eq!(r.skipped(), 0);
    }

    #[test]
    fn next_batch_matches_iterator_and_reuses_capacity() {
        let recs: Vec<PacketRecord> = (0..1_000u64)
            .map(|i| PacketRecord::udp(i, i as u128, 9, 1, 53, 80))
            .collect();
        let bytes = encode(&recs).unwrap();
        let mut chunks = decode_chunks(&bytes[..], 300).unwrap();
        let mut batch = RecordBatch::new();
        let mut all: Vec<PacketRecord> = Vec::new();
        let mut sizes = Vec::new();
        while let Some(item) = chunks.next_batch(&mut batch) {
            item.unwrap();
            sizes.push(batch.len());
            all.extend(batch.iter());
        }
        assert_eq!(sizes, vec![300, 300, 300, 100]);
        assert_eq!(all, recs);
        // The stream is fused: further calls keep returning None and leave
        // the reused batch cleared.
        assert!(chunks.next_batch(&mut batch).is_none());
        assert!(batch.is_empty());
    }

    #[test]
    fn next_batch_error_after_partial_batch() {
        let bytes = encode(&sample()).unwrap();
        let cut = &bytes[..bytes.len() - 3];
        let mut chunks = decode_chunks(cut, 100).unwrap();
        let mut batch = RecordBatch::new();
        assert!(chunks.next_batch(&mut batch).unwrap().is_ok());
        assert_eq!(batch.len(), 3, "records before the cut arrive first");
        assert!(matches!(
            chunks.next_batch(&mut batch),
            Some(Err(CodecError::Truncated))
        ));
        assert!(chunks.next_batch(&mut batch).is_none(), "fused after error");
    }

    #[test]
    fn next_batch_permissive_skips_field_overflow() {
        let (bytes, expected) = bytes_with_bad_dport();
        let mut chunks = decode_chunks(&bytes[..], 4).unwrap().permissive(true);
        let mut batch = RecordBatch::new();
        let mut all: Vec<PacketRecord> = Vec::new();
        while let Some(item) = chunks.next_batch(&mut batch) {
            item.unwrap();
            all.extend(batch.iter());
        }
        assert_eq!(all, expected);
        assert_eq!(chunks.skipped(), 1);
    }

    #[test]
    fn truncation_at_every_cut_is_a_typed_error_never_a_panic() {
        let bytes = encode(&sample()).unwrap();
        for cut in 0..bytes.len() {
            let head = &bytes[..cut];
            match decode_chunks(head, 2) {
                Ok(mut chunks) => {
                    let mut batch = RecordBatch::new();
                    while let Some(item) = chunks.next_batch(&mut batch) {
                        if let Err(e) = item {
                            assert!(
                                matches!(e, CodecError::Truncated | CodecError::VarintOverflow),
                                "cut={cut}: unexpected {e}"
                            );
                            break;
                        }
                    }
                }
                Err(e) => assert!(
                    matches!(e, CodecError::Truncated),
                    "cut={cut}: header error should be Truncated, got {e}"
                ),
            }
        }
    }

    #[test]
    fn bit_flips_are_typed_errors_never_panics() {
        let recs: Vec<PacketRecord> = (0..20u64)
            .map(|i| PacketRecord::tcp(i * 50, 3, 0xb0 + i as u128, 1, 443, 60))
            .collect();
        let clean = encode(&recs).unwrap();
        // Flip every bit of every byte in turn; each corrupted stream must
        // decode to records and/or typed errors — never panic, never loop.
        for byte in 0..clean.len() {
            for bit in 0..8 {
                let mut bad = clean.clone();
                bad[byte] ^= 1 << bit;
                match decode_chunks(&bad[..], 7) {
                    Ok(mut chunks) => {
                        let mut batch = RecordBatch::new();
                        let mut steps = 0;
                        while let Some(item) = chunks.next_batch(&mut batch) {
                            steps += 1;
                            assert!(steps <= recs.len() + 2, "byte={byte} bit={bit}: runaway");
                            if item.is_err() {
                                break;
                            }
                        }
                    }
                    Err(e) => assert!(
                        matches!(e, CodecError::BadMagic(_) | CodecError::BadVersion(_)),
                        "byte={byte} bit={bit}: header flip should be magic/version, got {e}"
                    ),
                }
            }
        }
    }

    #[test]
    fn corrupt_input_increments_quarantine_counters() {
        let reg = MetricsRegistry::global();
        let before_trunc = reg.counter("trace.codec.errors.truncated").get();
        let before_skip = reg.counter("trace.codec.skipped.field_overflow").get();

        let bytes = encode(&sample()).unwrap();
        let cut = &bytes[..bytes.len() - 3];
        let _ = StreamingTraceReader::new(cut).unwrap().count();

        let (bad, _) = bytes_with_bad_dport();
        let _ = StreamingTraceReader::new(&bad[..])
            .unwrap()
            .permissive(true)
            .count();

        // Tests share the global registry, so assert monotone growth
        // rather than exact deltas.
        assert!(reg.counter("trace.codec.errors.truncated").get() > before_trunc);
        assert!(reg.counter("trace.codec.skipped.field_overflow").get() > before_skip);
    }

    #[test]
    fn large_buffered_write_flushes() {
        // Exceed the 60 KiB internal buffer to exercise the flush path.
        let recs: Vec<PacketRecord> = (0..4000u64)
            .map(|i| PacketRecord::tcp(i, i as u128, 1, 1, 22, 60))
            .collect();
        let bytes = encode(&recs).unwrap();
        assert_eq!(decode(&bytes).unwrap().len(), 4000);
    }
}
