//! Compact binary trace format with streaming reader/writer.
//!
//! Layout:
//!
//! ```text
//! magic  b"L6TR"          4 bytes
//! version u8              currently 1
//! record*:
//!   delta_ts  varint      ms since previous record (first: since 0)
//!   src       16 bytes    big-endian u128
//!   dst       16 bytes    big-endian u128
//!   proto     1 byte      IP next-header value
//!   sport     varint
//!   dport     varint
//!   len       varint
//! ```
//!
//! Timestamps must be non-decreasing (delta encoding); the writer enforces
//! this. Varints are LEB128 (7 bits per byte). The format is intentionally
//! simple: a 439-day scaled trace (a few million records) encodes in tens of
//! MB and reads back at memory bandwidth.

use crate::record::{PacketRecord, Transport};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;
use std::io::{self, Read, Write};

/// File magic.
pub const MAGIC: &[u8; 4] = b"L6TR";
/// Current format version.
pub const VERSION: u8 = 1;

/// Errors from decoding a trace stream.
#[derive(Debug)]
pub enum CodecError {
    /// Stream did not start with the `L6TR` magic.
    BadMagic([u8; 4]),
    /// Unsupported format version.
    BadVersion(u8),
    /// Stream ended in the middle of a record.
    Truncated,
    /// A varint exceeded 64 bits.
    VarintOverflow,
    /// A varint-decoded port or length exceeded its field width.
    FieldOverflow(&'static str, u64),
    /// Underlying I/O error.
    Io(io::Error),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::BadMagic(m) => write!(f, "bad magic {m:?} (expected \"L6TR\")"),
            CodecError::BadVersion(v) => write!(f, "unsupported trace version {v}"),
            CodecError::Truncated => write!(f, "trace stream truncated mid-record"),
            CodecError::VarintOverflow => write!(f, "varint exceeds 64 bits"),
            CodecError::FieldOverflow(name, v) => write!(f, "field {name} out of range: {v}"),
            CodecError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for CodecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CodecError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CodecError {
    fn from(e: io::Error) -> Self {
        CodecError::Io(e)
    }
}

fn put_varint(buf: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

fn get_varint(buf: &mut Bytes) -> Result<u64, CodecError> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        if !buf.has_remaining() {
            return Err(CodecError::Truncated);
        }
        let byte = buf.get_u8();
        if shift >= 64 || (shift == 63 && byte > 1) {
            return Err(CodecError::VarintOverflow);
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Streaming writer for the `L6TR` format.
///
/// Records must be appended in non-decreasing timestamp order; `append`
/// panics otherwise (a programming error — traces are canonical-sorted).
pub struct TraceWriter<W: Write> {
    sink: W,
    buf: BytesMut,
    prev_ts: u64,
    count: u64,
}

impl<W: Write> TraceWriter<W> {
    /// Creates a writer and emits the header.
    pub fn new(mut sink: W) -> Result<Self, CodecError> {
        sink.write_all(MAGIC)?;
        sink.write_all(&[VERSION])?;
        Ok(TraceWriter {
            sink,
            buf: BytesMut::with_capacity(64 * 1024),
            prev_ts: 0,
            count: 0,
        })
    }

    /// Appends one record.
    pub fn append(&mut self, r: &PacketRecord) -> Result<(), CodecError> {
        assert!(
            r.ts_ms >= self.prev_ts,
            "trace records must be time-sorted: {} < {}",
            r.ts_ms,
            self.prev_ts
        );
        put_varint(&mut self.buf, r.ts_ms - self.prev_ts);
        self.prev_ts = r.ts_ms;
        self.buf.put_u128(r.src);
        self.buf.put_u128(r.dst);
        self.buf.put_u8(r.proto.to_byte());
        put_varint(&mut self.buf, u64::from(r.sport));
        put_varint(&mut self.buf, u64::from(r.dport));
        put_varint(&mut self.buf, u64::from(r.len));
        self.count += 1;
        if self.buf.len() >= 60 * 1024 {
            self.sink.write_all(&self.buf)?;
            self.buf.clear();
        }
        Ok(())
    }

    /// Number of records appended so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Flushes buffered records and returns the sink.
    pub fn finish(mut self) -> Result<W, CodecError> {
        self.sink.write_all(&self.buf)?;
        self.sink.flush()?;
        Ok(self.sink)
    }
}

/// Encodes a whole slice to an in-memory buffer.
pub fn encode(records: &[PacketRecord]) -> Result<Vec<u8>, CodecError> {
    let mut w = TraceWriter::new(Vec::new())?;
    for r in records {
        w.append(r)?;
    }
    w.finish()
}

/// Streaming reader: an iterator of `Result<PacketRecord, CodecError>`.
///
/// Reads the whole source eagerly into memory (traces are modest) then
/// decodes incrementally; decode errors surface on the failing record.
#[derive(Debug)]
pub struct TraceReader {
    buf: Bytes,
    prev_ts: u64,
    failed: bool,
}

impl TraceReader {
    /// Creates a reader over an in-memory buffer, validating the header.
    pub fn from_bytes(data: impl Into<Bytes>) -> Result<Self, CodecError> {
        let mut buf: Bytes = data.into();
        if buf.remaining() < 5 {
            return Err(CodecError::Truncated);
        }
        let mut magic = [0u8; 4];
        buf.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(CodecError::BadMagic(magic));
        }
        let version = buf.get_u8();
        if version != VERSION {
            return Err(CodecError::BadVersion(version));
        }
        Ok(TraceReader {
            buf,
            prev_ts: 0,
            failed: false,
        })
    }

    /// Creates a reader from any `Read` source (e.g. a file).
    pub fn from_reader<R: Read>(mut src: R) -> Result<Self, CodecError> {
        let mut data = Vec::new();
        src.read_to_end(&mut data)?;
        Self::from_bytes(data)
    }

    fn next_record(&mut self) -> Result<Option<PacketRecord>, CodecError> {
        if !self.buf.has_remaining() {
            return Ok(None);
        }
        let delta = get_varint(&mut self.buf)?;
        if self.buf.remaining() < 33 {
            return Err(CodecError::Truncated);
        }
        let src = self.buf.get_u128();
        let dst = self.buf.get_u128();
        let proto = Transport::from_byte(self.buf.get_u8());
        let sport = get_varint(&mut self.buf)?;
        let dport = get_varint(&mut self.buf)?;
        let len = get_varint(&mut self.buf)?;
        if sport > u64::from(u16::MAX) {
            return Err(CodecError::FieldOverflow("sport", sport));
        }
        if dport > u64::from(u16::MAX) {
            return Err(CodecError::FieldOverflow("dport", dport));
        }
        if len > u64::from(u16::MAX) {
            return Err(CodecError::FieldOverflow("len", len));
        }
        self.prev_ts += delta;
        Ok(Some(PacketRecord {
            ts_ms: self.prev_ts,
            src,
            dst,
            proto,
            sport: sport as u16,
            dport: dport as u16,
            len: len as u16,
        }))
    }
}

impl Iterator for TraceReader {
    type Item = Result<PacketRecord, CodecError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        match self.next_record() {
            Ok(Some(r)) => Some(Ok(r)),
            Ok(None) => None,
            Err(e) => {
                self.failed = true;
                Some(Err(e))
            }
        }
    }
}

/// Decodes a whole buffer, failing on the first malformed record.
pub fn decode(data: &[u8]) -> Result<Vec<PacketRecord>, CodecError> {
    TraceReader::from_bytes(data.to_vec())?.collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<PacketRecord> {
        vec![
            PacketRecord::tcp(0, 10, 20, 40000, 22, 60),
            PacketRecord::tcp(5, u128::MAX, 0, 65535, 65535, 65535),
            PacketRecord::udp(5, 1, 2, 500, 500, 120),
            PacketRecord::icmpv6_echo(1_000_000, 3, 4, 96),
        ]
    }

    #[test]
    fn roundtrip() {
        let recs = sample();
        let bytes = encode(&recs).unwrap();
        assert_eq!(decode(&bytes).unwrap(), recs);
    }

    #[test]
    fn empty_trace_roundtrips() {
        let bytes = encode(&[]).unwrap();
        assert_eq!(bytes.len(), 5);
        assert!(decode(&bytes).unwrap().is_empty());
    }

    #[test]
    fn bad_magic_rejected() {
        let err = TraceReader::from_bytes(b"NOPE\x01".to_vec()).unwrap_err();
        assert!(matches!(err, CodecError::BadMagic(_)));
    }

    #[test]
    fn bad_version_rejected() {
        let err = TraceReader::from_bytes(b"L6TR\x63".to_vec()).unwrap_err();
        assert!(matches!(err, CodecError::BadVersion(0x63)));
    }

    #[test]
    fn truncated_header_rejected() {
        assert!(matches!(
            TraceReader::from_bytes(b"L6T".to_vec()).unwrap_err(),
            CodecError::Truncated
        ));
    }

    #[test]
    fn truncated_record_surfaces_error_once() {
        let bytes = encode(&sample()).unwrap();
        let cut = &bytes[..bytes.len() - 3];
        let mut reader = TraceReader::from_bytes(cut.to_vec()).unwrap();
        let mut errs = 0;
        let mut oks = 0;
        for item in reader.by_ref() {
            match item {
                Ok(_) => oks += 1,
                Err(_) => errs += 1,
            }
        }
        assert_eq!(errs, 1, "exactly one error then stop");
        assert_eq!(oks, 3, "records before the cut decode fine");
        assert!(reader.next().is_none(), "iterator is fused after error");
    }

    #[test]
    #[should_panic(expected = "time-sorted")]
    fn writer_rejects_time_regression() {
        let mut w = TraceWriter::new(Vec::new()).unwrap();
        w.append(&PacketRecord::tcp(10, 1, 2, 1, 22, 60)).unwrap();
        w.append(&PacketRecord::tcp(9, 1, 2, 1, 22, 60)).unwrap();
    }

    #[test]
    fn varint_boundaries() {
        let mut recs = Vec::new();
        let mut ts = 0;
        for delta in [0u64, 1, 127, 128, 16383, 16384, u32::MAX as u64] {
            ts += delta;
            recs.push(PacketRecord::tcp(ts, 7, 8, 0, 0, 0));
        }
        let bytes = encode(&recs).unwrap();
        assert_eq!(decode(&bytes).unwrap(), recs);
    }

    #[test]
    fn garbage_after_header_is_an_error_not_a_panic() {
        let mut bytes = b"L6TR\x01".to_vec();
        bytes.extend_from_slice(&[0xff; 7]); // endless varint + truncation
        let reader = TraceReader::from_bytes(bytes).unwrap();
        let items: Vec<_> = reader.collect();
        assert_eq!(items.len(), 1);
        assert!(items[0].is_err());
    }

    #[test]
    fn from_reader_reads_files() {
        let bytes = encode(&sample()).unwrap();
        let reader = TraceReader::from_reader(&bytes[..]).unwrap();
        let recs: Result<Vec<_>, _> = reader.collect();
        assert_eq!(recs.unwrap(), sample());
    }

    #[test]
    fn writer_counts() {
        let mut w = TraceWriter::new(Vec::new()).unwrap();
        for r in sample() {
            w.append(&r).unwrap();
        }
        assert_eq!(w.count(), 4);
    }

    #[test]
    fn large_buffered_write_flushes() {
        // Exceed the 60 KiB internal buffer to exercise the flush path.
        let recs: Vec<PacketRecord> = (0..4000u64)
            .map(|i| PacketRecord::tcp(i, i as u128, 1, 1, 22, 60))
            .collect();
        let bytes = encode(&recs).unwrap();
        assert_eq!(decode(&bytes).unwrap().len(), 4000);
    }
}
