//! The [`Source`] abstraction: anything that can feed time-ordered
//! [`PacketRecord`]s to the detection pipeline in batches.
//!
//! Historically the ingest loop was hard-wired to an `L6TR` trace file,
//! which forces every workload through a materialize-then-scan cycle: the
//! fleet simulator must write the whole trace to disk (or RAM) before the
//! first packet reaches a detector. At paper scale — 2.14 B packets — that
//! trace is ~100 GB and the materialization dominates the run. `Source`
//! decouples the pipeline from the file: a session pulls batches from *any*
//! source, and each source defines its own resumable position space so
//! checkpoint/resume keeps working.
//!
//! Three implementations exist:
//!
//! - [`MaterializedSource`] — an in-memory, already-sorted record vector
//!   (what the simulators and tests produce). Positions are record indices.
//! - [`FileStreamSource`] — a bounded-memory streaming decoder over an
//!   `L6TR` file (wrapping [`StreamingTraceReader`]). Positions are byte
//!   offsets, exactly as session checkpoints always recorded them, so
//!   pre-existing checkpoints resume unchanged.
//! - `FleetSource` (in `lumen6-scanners`, which depends on this crate) —
//!   synthesizes batches directly from the fleet actors in timestamp order,
//!   never materializing a trace. Positions are record indices.
//!
//! The [`TracePosition`] type is reused as the position for all sources;
//! its `offset` field is *source-defined* (bytes for the file stream,
//! record index for the others). A position is only meaningful to the kind
//! of source that produced it — the same contract a byte offset always had.

use crate::batch::RecordBatch;
use crate::codec::{CodecError, StreamingTraceReader, TracePosition};
use crate::record::PacketRecord;
use std::fs::File;
use std::io::{self, BufReader};
use std::path::{Path, PathBuf};

/// A resumable, batch-oriented producer of time-ordered packet records.
///
/// # Contract
///
/// - [`fill`](Source::fill) clears `out`, appends up to `max` records in
///   non-decreasing timestamp order (continuing from the previous call),
///   and returns how many it appended. Returning `0` means end of stream;
///   callers must treat `max == 0` as unsupported (implementations may
///   still produce one record).
/// - [`position`](Source::position) identifies the boundary after the last
///   record returned, in the source's own offset space; feeding it to
///   [`resume`](Source::resume) on a source of the same kind over the same
///   underlying data continues the stream exactly there.
/// - Sources that can skip malformed records report the running total via
///   [`skipped`](Source::skipped).
pub trait Source: Send {
    /// Clears `out` and appends up to `max` records; `Ok(0)` = end of
    /// stream. Errors follow [`CodecError`] semantics: records decoded
    /// before an error are delivered first (as a short batch), the error
    /// surfaces on the next call, and the source fuses after it.
    fn fill(&mut self, out: &mut RecordBatch, max: usize) -> Result<usize, CodecError>;

    /// The resumable position after the most recently delivered record.
    fn position(&self) -> TracePosition;

    /// Repositions the stream at `at` (a value previously obtained from
    /// [`position`](Source::position) on the same kind of source).
    fn resume(&mut self, at: TracePosition) -> Result<(), CodecError>;

    /// Malformed records skipped so far (permissive decoding); `0` for
    /// sources that cannot produce malformed records.
    fn skipped(&self) -> u64 {
        0
    }
}

/// A [`Source`] over an in-memory, time-sorted record vector. Positions are
/// record indices.
///
/// ```
/// use lumen6_trace::{MaterializedSource, PacketRecord, RecordBatch, Source};
/// let recs: Vec<PacketRecord> =
///     (0..10).map(|i| PacketRecord::tcp(i, 1, 2, 1000, 22, 60)).collect();
/// let mut src = MaterializedSource::new(recs.clone());
/// let mut batch = RecordBatch::new();
/// assert_eq!(src.fill(&mut batch, 4).unwrap(), 4);
/// let pos = src.position();
/// assert_eq!(pos.offset, 4);
/// src.resume(pos).unwrap();
/// assert_eq!(src.fill(&mut batch, 100).unwrap(), 6);
/// assert_eq!(src.fill(&mut batch, 100).unwrap(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct MaterializedSource {
    records: Vec<PacketRecord>,
    pos: usize,
}

impl MaterializedSource {
    /// Wraps a time-sorted record vector.
    pub fn new(records: Vec<PacketRecord>) -> Self {
        MaterializedSource { records, pos: 0 }
    }

    /// Total records (consumed and not).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

impl Source for MaterializedSource {
    fn fill(&mut self, out: &mut RecordBatch, max: usize) -> Result<usize, CodecError> {
        out.clear();
        let n = max.min(self.records.len() - self.pos);
        for r in &self.records[self.pos..self.pos + n] {
            out.push(*r);
        }
        self.pos += n;
        Ok(n)
    }

    fn position(&self) -> TracePosition {
        TracePosition {
            offset: self.pos as u64,
            prev_ts: if self.pos > 0 {
                self.records[self.pos - 1].ts_ms
            } else {
                0
            },
        }
    }

    fn resume(&mut self, at: TracePosition) -> Result<(), CodecError> {
        let pos = usize::try_from(at.offset).unwrap_or(usize::MAX);
        if pos > self.records.len() {
            return Err(CodecError::Io(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "resume offset {pos} beyond materialized trace of {} records",
                    self.records.len()
                ),
            )));
        }
        self.pos = pos;
        Ok(())
    }
}

/// A [`Source`] streaming an `L6TR` trace file in bounded memory. Positions
/// are byte offsets — the same values session checkpoints have always
/// stored, so existing checkpoints resume through this source unchanged.
#[derive(Debug)]
pub struct FileStreamSource {
    path: PathBuf,
    reader: StreamingTraceReader<BufReader<File>>,
    permissive: bool,
    pending_err: Option<CodecError>,
    done: bool,
}

impl FileStreamSource {
    /// Opens `path` and validates the `L6TR` header.
    pub fn open(path: &Path) -> Result<Self, CodecError> {
        let reader = StreamingTraceReader::new(BufReader::new(File::open(path)?))?;
        Ok(FileStreamSource {
            path: path.to_path_buf(),
            reader,
            permissive: false,
            pending_err: None,
            done: false,
        })
    }

    /// Enables or disables permissive decoding (recoverable per-record
    /// errors are skipped and counted instead of ending the stream).
    pub fn permissive(mut self, yes: bool) -> Self {
        self.permissive = yes;
        self.reader = self.reader.permissive(yes);
        self
    }
}

impl Source for FileStreamSource {
    fn fill(&mut self, out: &mut RecordBatch, max: usize) -> Result<usize, CodecError> {
        out.clear();
        if self.done {
            return Ok(0);
        }
        if let Some(e) = self.pending_err.take() {
            self.done = true;
            return Err(e);
        }
        while out.len() < max {
            match self.reader.next() {
                Some(Ok(r)) => out.push(r),
                Some(Err(e)) => {
                    if out.is_empty() {
                        self.done = true;
                        return Err(e);
                    }
                    self.pending_err = Some(e);
                    break;
                }
                None => {
                    self.done = true;
                    break;
                }
            }
        }
        Ok(out.len())
    }

    fn position(&self) -> TracePosition {
        self.reader.position()
    }

    fn resume(&mut self, at: TracePosition) -> Result<(), CodecError> {
        let file = BufReader::new(File::open(&self.path)?);
        self.reader = StreamingTraceReader::resume(file, at)?.permissive(self.permissive);
        self.pending_err = None;
        self.done = false;
        Ok(())
    }

    fn skipped(&self) -> u64 {
        self.reader.skipped()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::encode;

    fn recs(n: u64) -> Vec<PacketRecord> {
        (0..n)
            .map(|i| PacketRecord::tcp(i * 7, i as u128, (i * 3) as u128, 1, 22, 60))
            .collect()
    }

    fn write_trace(records: &[PacketRecord]) -> tempdir::ScopedFile {
        let bytes = encode(records).expect("encode");
        tempdir::ScopedFile::with_bytes(&bytes)
    }

    /// Minimal scoped temp-file helper (no external tempfile dep).
    mod tempdir {
        use std::path::{Path, PathBuf};

        pub struct ScopedFile {
            path: PathBuf,
        }

        impl ScopedFile {
            pub fn with_bytes(bytes: &[u8]) -> Self {
                use std::sync::atomic::{AtomicU64, Ordering};
                static SEQ: AtomicU64 = AtomicU64::new(0);
                let path = std::env::temp_dir().join(format!(
                    "lumen6-source-test-{}-{}",
                    std::process::id(),
                    SEQ.fetch_add(1, Ordering::Relaxed)
                ));
                std::fs::write(&path, bytes).expect("write temp trace");
                ScopedFile { path }
            }

            pub fn path(&self) -> &Path {
                &self.path
            }
        }

        impl Drop for ScopedFile {
            fn drop(&mut self) {
                let _ = std::fs::remove_file(&self.path);
            }
        }
    }

    fn drain(src: &mut dyn Source, max: usize) -> Vec<PacketRecord> {
        let mut out = Vec::new();
        let mut batch = RecordBatch::new();
        loop {
            let n = src.fill(&mut batch, max).expect("fill");
            if n == 0 {
                break;
            }
            out.extend(batch.iter());
        }
        out
    }

    #[test]
    fn materialized_source_yields_everything_in_batches() {
        let want = recs(1000);
        for max in [1, 7, 256, 5000] {
            let mut src = MaterializedSource::new(want.clone());
            assert_eq!(drain(&mut src, max), want, "max={max}");
        }
    }

    #[test]
    fn materialized_source_position_resume_roundtrip() {
        let want = recs(100);
        let mut src = MaterializedSource::new(want.clone());
        let mut batch = RecordBatch::new();
        assert_eq!(src.fill(&mut batch, 40).unwrap(), 40);
        let pos = src.position();
        assert_eq!(pos.offset, 40);
        assert_eq!(pos.prev_ts, want[39].ts_ms);
        // A fresh source resumed at that position yields exactly the tail.
        let mut fresh = MaterializedSource::new(want.clone());
        fresh.resume(pos).unwrap();
        assert_eq!(drain(&mut fresh, 33), want[40..].to_vec());
        // Beyond-end offsets are rejected, not a panic.
        assert!(fresh
            .resume(TracePosition {
                offset: 101,
                prev_ts: 0
            })
            .is_err());
    }

    #[test]
    fn file_stream_source_matches_materialized() {
        let want = recs(2_000);
        let f = write_trace(&want);
        for max in [1, 64, 4096] {
            let mut src = FileStreamSource::open(f.path()).expect("open");
            assert_eq!(drain(&mut src, max), want, "max={max}");
        }
    }

    #[test]
    fn file_stream_source_resume_continues_exactly() {
        let want = recs(1_500);
        let f = write_trace(&want);
        let mut src = FileStreamSource::open(f.path()).expect("open");
        let mut batch = RecordBatch::new();
        let mut head = Vec::new();
        for _ in 0..3 {
            src.fill(&mut batch, 250).unwrap();
            head.extend(batch.iter());
        }
        let pos = src.position();
        assert_eq!(
            pos.prev_ts,
            head.last().map_or(0, |r: &PacketRecord| r.ts_ms)
        );
        let mut fresh = FileStreamSource::open(f.path()).expect("open");
        fresh.resume(pos).unwrap();
        head.extend(drain(&mut fresh, 123));
        assert_eq!(head, want);
    }

    #[test]
    fn file_stream_source_surfaces_error_after_partial_batch_then_fuses() {
        let want = recs(10);
        let bytes = encode(&want).expect("encode");
        let cut = &bytes[..bytes.len() - 3];
        let f = tempdir::ScopedFile::with_bytes(cut);
        let mut src = FileStreamSource::open(f.path()).expect("open");
        let mut batch = RecordBatch::new();
        // Everything before the cut arrives as (possibly short) batches...
        let mut got = 0;
        let err = loop {
            match src.fill(&mut batch, 4) {
                Ok(0) => panic!("stream must end in an error, not EOF"),
                Ok(n) => got += n,
                Err(e) => break e,
            }
        };
        assert_eq!(got, 9, "records before the truncation decode fine");
        assert!(matches!(err, CodecError::Truncated));
        // Fused after the error.
        assert_eq!(src.fill(&mut batch, 4).unwrap(), 0);
    }

    #[test]
    fn file_stream_source_missing_file_is_io() {
        let err = FileStreamSource::open(Path::new("/nonexistent/lumen6-nope.l6tr")).unwrap_err();
        assert!(matches!(err, CodecError::Io(_)));
    }
}
