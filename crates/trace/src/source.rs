//! The [`Source`] abstraction: anything that can feed time-ordered
//! [`PacketRecord`]s to the detection pipeline in batches.
//!
//! Historically the ingest loop was hard-wired to an `L6TR` trace file,
//! which forces every workload through a materialize-then-scan cycle: the
//! fleet simulator must write the whole trace to disk (or RAM) before the
//! first packet reaches a detector. At paper scale — 2.14 B packets — that
//! trace is ~100 GB and the materialization dominates the run. `Source`
//! decouples the pipeline from the file: a session pulls batches from *any*
//! source, and each source defines its own resumable position space so
//! checkpoint/resume keeps working.
//!
//! Three implementations exist:
//!
//! - [`MaterializedSource`] — an in-memory, already-sorted record vector
//!   (what the simulators and tests produce). Positions are record indices.
//! - [`FileStreamSource`] — a bounded-memory streaming decoder over an
//!   `L6TR` file (wrapping [`StreamingTraceReader`]). Positions are byte
//!   offsets, exactly as session checkpoints always recorded them, so
//!   pre-existing checkpoints resume unchanged.
//! - `FleetSource` (in `lumen6-scanners`, which depends on this crate) —
//!   synthesizes batches directly from the fleet actors in timestamp order,
//!   never materializing a trace. Positions are record indices.
//!
//! The [`TracePosition`] type is reused as the position for all sources;
//! its `offset` field is *source-defined* (bytes for the file stream,
//! record index for the others). A position is only meaningful to the kind
//! of source that produced it — the same contract a byte offset always had.

use crate::batch::RecordBatch;
use crate::codec::{
    decode_record_at, CodecError, StreamingTraceReader, TracePosition, MAGIC, MAX_RECORD_LEN,
    VERSION,
};
use crate::record::PacketRecord;
use lumen6_obs::MetricsRegistry;
use std::fs::{self, File};
use std::io::{self, BufReader, Read as _, Seek as _};
use std::path::{Path, PathBuf};

/// Result of one non-blocking [`Source::poll_fill`] pull.
///
/// Finite sources only ever report `Filled` or `Eof`; `Pending` exists for
/// live sources (a [`TailSource`] over a file another process is still
/// writing) where "no records right now" is not "no records ever". A
/// scheduler multiplexing many sessions reacts to `Pending` by moving on to
/// another tenant instead of blocking a worker thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FillOutcome {
    /// `out` holds this many records (≥ 1).
    Filled(usize),
    /// No records are available right now, but the stream has not ended —
    /// poll again later.
    Pending,
    /// End of stream; no further records will ever arrive.
    Eof,
}

/// A resumable, batch-oriented producer of time-ordered packet records.
///
/// # Contract
///
/// - [`fill`](Source::fill) clears `out`, appends up to `max` records in
///   non-decreasing timestamp order (continuing from the previous call),
///   and returns how many it appended. Returning `0` means end of stream;
///   callers must treat `max == 0` as unsupported (implementations may
///   still produce one record).
/// - [`position`](Source::position) identifies the boundary after the last
///   record returned, in the source's own offset space; feeding it to
///   [`resume`](Source::resume) on a source of the same kind over the same
///   underlying data continues the stream exactly there.
/// - Sources that can skip malformed records report the running total via
///   [`skipped`](Source::skipped).
pub trait Source: Send {
    /// Clears `out` and appends up to `max` records; `Ok(0)` = end of
    /// stream. Errors follow [`CodecError`] semantics: records decoded
    /// before an error are delivered first (as a short batch), the error
    /// surfaces on the next call, and the source fuses after it.
    fn fill(&mut self, out: &mut RecordBatch, max: usize) -> Result<usize, CodecError>;

    /// Non-blocking variant of [`fill`](Source::fill): clears `out`,
    /// appends up to `max` records, and distinguishes "nothing *yet*"
    /// ([`FillOutcome::Pending`]) from "nothing *ever again*"
    /// ([`FillOutcome::Eof`]). The default delegates to `fill`, which is
    /// correct for every finite source (they never need to wait); live
    /// sources like [`TailSource`] override it and never block.
    fn poll_fill(&mut self, out: &mut RecordBatch, max: usize) -> Result<FillOutcome, CodecError> {
        match self.fill(out, max)? {
            0 => Ok(FillOutcome::Eof),
            n => Ok(FillOutcome::Filled(n)),
        }
    }

    /// The resumable position after the most recently delivered record.
    fn position(&self) -> TracePosition;

    /// Repositions the stream at `at` (a value previously obtained from
    /// [`position`](Source::position) on the same kind of source).
    fn resume(&mut self, at: TracePosition) -> Result<(), CodecError>;

    /// Malformed records skipped so far (permissive decoding); `0` for
    /// sources that cannot produce malformed records.
    fn skipped(&self) -> u64 {
        0
    }
}

/// A [`Source`] over an in-memory, time-sorted record vector. Positions are
/// record indices.
///
/// ```
/// use lumen6_trace::{MaterializedSource, PacketRecord, RecordBatch, Source};
/// let recs: Vec<PacketRecord> =
///     (0..10).map(|i| PacketRecord::tcp(i, 1, 2, 1000, 22, 60)).collect();
/// let mut src = MaterializedSource::new(recs.clone());
/// let mut batch = RecordBatch::new();
/// assert_eq!(src.fill(&mut batch, 4).unwrap(), 4);
/// let pos = src.position();
/// assert_eq!(pos.offset, 4);
/// src.resume(pos).unwrap();
/// assert_eq!(src.fill(&mut batch, 100).unwrap(), 6);
/// assert_eq!(src.fill(&mut batch, 100).unwrap(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct MaterializedSource {
    records: Vec<PacketRecord>,
    pos: usize,
}

impl MaterializedSource {
    /// Wraps a time-sorted record vector.
    pub fn new(records: Vec<PacketRecord>) -> Self {
        MaterializedSource { records, pos: 0 }
    }

    /// Total records (consumed and not).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

impl Source for MaterializedSource {
    fn fill(&mut self, out: &mut RecordBatch, max: usize) -> Result<usize, CodecError> {
        out.clear();
        let n = max.min(self.records.len() - self.pos);
        for r in &self.records[self.pos..self.pos + n] {
            out.push(*r);
        }
        self.pos += n;
        Ok(n)
    }

    fn position(&self) -> TracePosition {
        TracePosition {
            offset: self.pos as u64,
            prev_ts: if self.pos > 0 {
                self.records[self.pos - 1].ts_ms
            } else {
                0
            },
        }
    }

    fn resume(&mut self, at: TracePosition) -> Result<(), CodecError> {
        let pos = usize::try_from(at.offset).unwrap_or(usize::MAX);
        if pos > self.records.len() {
            return Err(CodecError::Io(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "resume offset {pos} beyond materialized trace of {} records",
                    self.records.len()
                ),
            )));
        }
        self.pos = pos;
        Ok(())
    }
}

/// A [`Source`] streaming an `L6TR` trace file in bounded memory. Positions
/// are byte offsets — the same values session checkpoints have always
/// stored, so existing checkpoints resume through this source unchanged.
#[derive(Debug)]
pub struct FileStreamSource {
    path: PathBuf,
    reader: StreamingTraceReader<BufReader<File>>,
    permissive: bool,
    pending_err: Option<CodecError>,
    done: bool,
}

impl FileStreamSource {
    /// Opens `path` and validates the `L6TR` header.
    pub fn open(path: &Path) -> Result<Self, CodecError> {
        let reader = StreamingTraceReader::new(BufReader::new(File::open(path)?))?;
        Ok(FileStreamSource {
            path: path.to_path_buf(),
            reader,
            permissive: false,
            pending_err: None,
            done: false,
        })
    }

    /// Enables or disables permissive decoding (recoverable per-record
    /// errors are skipped and counted instead of ending the stream).
    pub fn permissive(mut self, yes: bool) -> Self {
        self.permissive = yes;
        self.reader = self.reader.permissive(yes);
        self
    }
}

impl Source for FileStreamSource {
    fn fill(&mut self, out: &mut RecordBatch, max: usize) -> Result<usize, CodecError> {
        out.clear();
        if self.done {
            return Ok(0);
        }
        if let Some(e) = self.pending_err.take() {
            self.done = true;
            return Err(e);
        }
        while out.len() < max {
            match self.reader.next() {
                Some(Ok(r)) => out.push(r),
                Some(Err(e)) => {
                    if out.is_empty() {
                        self.done = true;
                        return Err(e);
                    }
                    self.pending_err = Some(e);
                    break;
                }
                None => {
                    self.done = true;
                    break;
                }
            }
        }
        Ok(out.len())
    }

    fn position(&self) -> TracePosition {
        self.reader.position()
    }

    fn resume(&mut self, at: TracePosition) -> Result<(), CodecError> {
        let file = BufReader::new(File::open(&self.path)?);
        self.reader = StreamingTraceReader::resume(file, at)?.permissive(self.permissive);
        self.pending_err = None;
        self.done = false;
        Ok(())
    }

    fn skipped(&self) -> u64 {
        self.reader.skipped()
    }
}

/// Whether two metadata handles describe the same file. Rotation-by-rename
/// is detected by inode identity on Unix; elsewhere only in-place
/// truncation (length shrink) is detectable.
#[cfg(unix)]
fn same_file(a: &fs::Metadata, b: &fs::Metadata) -> bool {
    use std::os::unix::fs::MetadataExt;
    a.dev() == b.dev() && a.ino() == b.ino()
}

#[cfg(not(unix))]
fn same_file(_a: &fs::Metadata, _b: &fs::Metadata) -> bool {
    true
}

/// A live [`Source`] tailing an `L6TR` file that another process is still
/// writing — the daemon-side ingest the one-shot [`FileStreamSource`]
/// cannot provide.
///
/// Each [`poll_fill`](Source::poll_fill) stats the file and decodes only
/// the *complete* records appended since the last poll:
///
/// - a **partial trailing record** (the writer is mid-append) is never
///   consumed; the poll returns what precedes it and retries the same
///   boundary next time;
/// - **truncation in place** (the file shrank below the read offset)
///   restarts decode from the header, counted under
///   `trace.tail.truncations`;
/// - **rotation by rename** (the path now names a different inode) drains
///   the remaining complete records of the old incarnation from the held
///   handle, then switches to the successor file and counts
///   `trace.tail.rotations`. A partial record stranded at the end of a
///   rotated-away file can never complete and is discarded (counted under
///   `trace.tail.discarded_bytes`);
/// - recoverable per-record decode errors follow the same permissive
///   quarantine contract as [`FileStreamSource`].
///
/// A tail never ends on its own: end of stream is declared out of band by
/// creating the [`eof_marker`](TailSource::eof_marker) sentinel file next
/// to the trace, after which a fully drained tail reports
/// [`FillOutcome::Eof`]. The blocking [`fill`](Source::fill) sleeps between
/// polls until then.
///
/// [`position`](Source::position)/[`resume`](Source::resume) carry byte
/// offsets within the *current incarnation*: a position taken before a
/// rotation resumes into the successor file's offset space, exactly like
/// re-opening a [`FileStreamSource`] on the new file.
#[derive(Debug)]
pub struct TailSource {
    path: PathBuf,
    file: Option<File>,
    /// Byte offset of the next un-decoded byte in the current incarnation.
    offset: u64,
    prev_ts: u64,
    header_done: bool,
    permissive: bool,
    done: bool,
    pending_err: Option<CodecError>,
    skipped: u64,
    rotations: u64,
    truncations: u64,
    window: Vec<u8>,
}

impl TailSource {
    /// Tails `path`. The file does not have to exist yet: polls report
    /// [`FillOutcome::Pending`] until the writer creates it.
    pub fn open(path: &Path) -> Self {
        TailSource {
            path: path.to_path_buf(),
            file: None,
            offset: 0,
            prev_ts: 0,
            header_done: false,
            permissive: false,
            done: false,
            pending_err: None,
            skipped: 0,
            rotations: 0,
            truncations: 0,
            window: Vec::new(),
        }
    }

    /// Enables or disables permissive decoding (recoverable per-record
    /// errors are skipped and counted instead of ending the stream).
    pub fn permissive(mut self, yes: bool) -> Self {
        self.permissive = yes;
        self
    }

    /// The sentinel path whose existence declares `path` finished: create
    /// this file when no further records will be appended and the tail
    /// reports [`FillOutcome::Eof`] once fully drained.
    pub fn eof_marker(path: &Path) -> PathBuf {
        PathBuf::from(format!("{}.eof", path.display()))
    }

    /// Rotations (path renamed to a new inode) observed so far.
    pub fn rotations(&self) -> u64 {
        self.rotations
    }

    /// In-place truncations observed so far.
    pub fn truncations(&self) -> u64 {
        self.truncations
    }

    /// Discards the current incarnation and re-opens `path` from the top.
    fn restart_incarnation(&mut self) {
        self.file = None;
        self.offset = 0;
        self.prev_ts = 0;
        self.header_done = false;
    }

    /// Decodes complete records from `[offset, flen)` of the held file into
    /// `out`. Returns `Ok(true)` if decoding is blocked on a partial
    /// trailing record (more bytes needed), `Ok(false)` if everything
    /// available was consumed.
    fn decode_available(
        &mut self,
        out: &mut RecordBatch,
        max: usize,
        flen: u64,
    ) -> Result<bool, CodecError> {
        let Some(file) = self.file.as_mut() else {
            return Ok(false);
        };
        if !self.header_done {
            if flen < 5 {
                return Ok(flen > 0);
            }
            let mut header = [0u8; 5];
            file.seek(io::SeekFrom::Start(0))?;
            file.read_exact(&mut header)?;
            let magic = [header[0], header[1], header[2], header[3]];
            if &magic != MAGIC {
                return Err(CodecError::BadMagic(magic));
            }
            if header[4] != VERSION {
                return Err(CodecError::BadVersion(header[4]));
            }
            self.header_done = true;
            self.offset = 5;
        }
        let avail = flen.saturating_sub(self.offset);
        if avail == 0 || out.len() >= max {
            return Ok(false);
        }
        // One window holds everything this poll can deliver: `max` records
        // at the worst-case encoded length. The read may come up short if
        // the file shrinks mid-poll; decode only what actually arrived.
        let want = usize::try_from(avail)
            .unwrap_or(usize::MAX)
            .min((max - out.len()).saturating_mul(MAX_RECORD_LEN));
        self.window.resize(want, 0);
        file.seek(io::SeekFrom::Start(self.offset))?;
        let mut got = 0;
        while got < want {
            let n = file.read(&mut self.window[got..])?;
            if n == 0 {
                break;
            }
            got += n;
        }
        let data = &self.window[..got];
        let mut pos = 0usize;
        let mut partial = false;
        while out.len() < max {
            match decode_record_at(data, &mut pos, &mut self.prev_ts) {
                Ok(r) => out.push(r),
                Err(CodecError::Truncated) => {
                    // A record runs past the window: the writer's partial
                    // tail if the window reached end-of-file, otherwise a
                    // complete record the next (re-read) window will cover.
                    // Never consumed either way.
                    partial = pos < data.len() && self.offset + got as u64 >= flen;
                    break;
                }
                Err(e) if self.permissive && e.is_recoverable() => {
                    self.skipped += 1;
                    MetricsRegistry::global()
                        .counter(&format!("trace.tail.skipped.{}", e.kind()))
                        .inc();
                }
                Err(e) => {
                    if out.is_empty() {
                        return Err(e);
                    }
                    self.pending_err = Some(e);
                    break;
                }
            }
        }
        self.offset += pos as u64;
        Ok(partial)
    }
}

impl Source for TailSource {
    /// Blocking drive of the tail: sleeps between polls until records or
    /// the [`eof_marker`](TailSource::eof_marker) arrive. Prefer
    /// [`poll_fill`](Source::poll_fill) in anything multiplexing sessions.
    fn fill(&mut self, out: &mut RecordBatch, max: usize) -> Result<usize, CodecError> {
        loop {
            match self.poll_fill(out, max)? {
                FillOutcome::Filled(n) => return Ok(n),
                FillOutcome::Eof => return Ok(0),
                FillOutcome::Pending => std::thread::sleep(std::time::Duration::from_millis(2)),
            }
        }
    }

    fn poll_fill(&mut self, out: &mut RecordBatch, max: usize) -> Result<FillOutcome, CodecError> {
        out.clear();
        if self.done {
            return Ok(FillOutcome::Eof);
        }
        if let Some(e) = self.pending_err.take() {
            self.done = true;
            return Err(e);
        }
        let max = max.max(1);
        // At most one incarnation switch per poll: the first pass drains
        // the current file; if it rotated away empty, the second pass reads
        // the successor.
        for _ in 0..2 {
            if self.file.is_none() {
                match File::open(&self.path) {
                    Ok(f) => self.file = Some(f),
                    Err(e) if e.kind() == io::ErrorKind::NotFound => {
                        return Ok(FillOutcome::Pending)
                    }
                    Err(e) => {
                        self.done = true;
                        return Err(e.into());
                    }
                }
            }
            let (flen, rotated) = {
                let Some(file) = self.file.as_ref() else {
                    return Ok(FillOutcome::Pending);
                };
                let hmeta = file.metadata()?;
                let rotated = match fs::metadata(&self.path) {
                    Ok(m) => !same_file(&m, &hmeta),
                    // Renamed away with no successor yet: treat as rotated
                    // and wait for the new file.
                    Err(e) if e.kind() == io::ErrorKind::NotFound => true,
                    Err(e) => {
                        self.done = true;
                        return Err(e.into());
                    }
                };
                (hmeta.len(), rotated)
            };
            if !rotated && flen < self.offset {
                // Truncated in place: the offset space restarted, so must we.
                self.truncations += 1;
                MetricsRegistry::global()
                    .counter("trace.tail.truncations")
                    .inc();
                self.restart_incarnation();
                continue;
            }
            let blocked_on_partial = match self.decode_available(out, max, flen) {
                Ok(b) => b,
                Err(e) => {
                    self.done = true;
                    return Err(e);
                }
            };
            if !out.is_empty() {
                return Ok(FillOutcome::Filled(out.len()));
            }
            if rotated {
                // Old incarnation fully drained of complete records. A
                // stranded partial tail can never complete — discard it.
                let stranded =
                    flen.saturating_sub(self.offset.max(if self.header_done { 5 } else { 0 }));
                if stranded > 0 {
                    MetricsRegistry::global()
                        .counter("trace.tail.discarded_bytes")
                        .add(stranded);
                }
                self.rotations += 1;
                MetricsRegistry::global()
                    .counter("trace.tail.rotations")
                    .inc();
                self.restart_incarnation();
                continue;
            }
            if Self::eof_marker(&self.path).exists() {
                if self.offset >= flen && !blocked_on_partial {
                    self.done = true;
                    return Ok(FillOutcome::Eof);
                }
                // Declared finished mid-record: genuine truncation.
                self.done = true;
                return Err(CodecError::Truncated);
            }
            return Ok(FillOutcome::Pending);
        }
        Ok(FillOutcome::Pending)
    }

    fn position(&self) -> TracePosition {
        TracePosition {
            offset: self.offset,
            prev_ts: self.prev_ts,
        }
    }

    fn resume(&mut self, at: TracePosition) -> Result<(), CodecError> {
        self.file = None;
        self.done = false;
        self.pending_err = None;
        if at.offset < 5 {
            self.offset = 0;
            self.prev_ts = 0;
            self.header_done = false;
        } else {
            self.offset = at.offset;
            self.prev_ts = at.prev_ts;
            self.header_done = true;
        }
        Ok(())
    }

    fn skipped(&self) -> u64 {
        self.skipped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::encode;

    fn recs(n: u64) -> Vec<PacketRecord> {
        (0..n)
            .map(|i| PacketRecord::tcp(i * 7, i as u128, (i * 3) as u128, 1, 22, 60))
            .collect()
    }

    fn write_trace(records: &[PacketRecord]) -> tempdir::ScopedFile {
        let bytes = encode(records).expect("encode");
        tempdir::ScopedFile::with_bytes(&bytes)
    }

    /// Minimal scoped temp-file helper (no external tempfile dep).
    mod tempdir {
        use std::path::{Path, PathBuf};

        pub struct ScopedFile {
            path: PathBuf,
        }

        impl ScopedFile {
            pub fn with_bytes(bytes: &[u8]) -> Self {
                use std::sync::atomic::{AtomicU64, Ordering};
                static SEQ: AtomicU64 = AtomicU64::new(0);
                let path = std::env::temp_dir().join(format!(
                    "lumen6-source-test-{}-{}",
                    std::process::id(),
                    SEQ.fetch_add(1, Ordering::Relaxed)
                ));
                std::fs::write(&path, bytes).expect("write temp trace");
                ScopedFile { path }
            }

            pub fn path(&self) -> &Path {
                &self.path
            }
        }

        impl Drop for ScopedFile {
            fn drop(&mut self) {
                let _ = std::fs::remove_file(&self.path);
            }
        }
    }

    fn drain(src: &mut dyn Source, max: usize) -> Vec<PacketRecord> {
        let mut out = Vec::new();
        let mut batch = RecordBatch::new();
        loop {
            let n = src.fill(&mut batch, max).expect("fill");
            if n == 0 {
                break;
            }
            out.extend(batch.iter());
        }
        out
    }

    #[test]
    fn materialized_source_yields_everything_in_batches() {
        let want = recs(1000);
        for max in [1, 7, 256, 5000] {
            let mut src = MaterializedSource::new(want.clone());
            assert_eq!(drain(&mut src, max), want, "max={max}");
        }
    }

    #[test]
    fn materialized_source_position_resume_roundtrip() {
        let want = recs(100);
        let mut src = MaterializedSource::new(want.clone());
        let mut batch = RecordBatch::new();
        assert_eq!(src.fill(&mut batch, 40).unwrap(), 40);
        let pos = src.position();
        assert_eq!(pos.offset, 40);
        assert_eq!(pos.prev_ts, want[39].ts_ms);
        // A fresh source resumed at that position yields exactly the tail.
        let mut fresh = MaterializedSource::new(want.clone());
        fresh.resume(pos).unwrap();
        assert_eq!(drain(&mut fresh, 33), want[40..].to_vec());
        // Beyond-end offsets are rejected, not a panic.
        assert!(fresh
            .resume(TracePosition {
                offset: 101,
                prev_ts: 0
            })
            .is_err());
    }

    #[test]
    fn file_stream_source_matches_materialized() {
        let want = recs(2_000);
        let f = write_trace(&want);
        for max in [1, 64, 4096] {
            let mut src = FileStreamSource::open(f.path()).expect("open");
            assert_eq!(drain(&mut src, max), want, "max={max}");
        }
    }

    #[test]
    fn file_stream_source_resume_continues_exactly() {
        let want = recs(1_500);
        let f = write_trace(&want);
        let mut src = FileStreamSource::open(f.path()).expect("open");
        let mut batch = RecordBatch::new();
        let mut head = Vec::new();
        for _ in 0..3 {
            src.fill(&mut batch, 250).unwrap();
            head.extend(batch.iter());
        }
        let pos = src.position();
        assert_eq!(
            pos.prev_ts,
            head.last().map_or(0, |r: &PacketRecord| r.ts_ms)
        );
        let mut fresh = FileStreamSource::open(f.path()).expect("open");
        fresh.resume(pos).unwrap();
        head.extend(drain(&mut fresh, 123));
        assert_eq!(head, want);
    }

    #[test]
    fn file_stream_source_surfaces_error_after_partial_batch_then_fuses() {
        let want = recs(10);
        let bytes = encode(&want).expect("encode");
        let cut = &bytes[..bytes.len() - 3];
        let f = tempdir::ScopedFile::with_bytes(cut);
        let mut src = FileStreamSource::open(f.path()).expect("open");
        let mut batch = RecordBatch::new();
        // Everything before the cut arrives as (possibly short) batches...
        let mut got = 0;
        let err = loop {
            match src.fill(&mut batch, 4) {
                Ok(0) => panic!("stream must end in an error, not EOF"),
                Ok(n) => got += n,
                Err(e) => break e,
            }
        };
        assert_eq!(got, 9, "records before the truncation decode fine");
        assert!(matches!(err, CodecError::Truncated));
        // Fused after the error.
        assert_eq!(src.fill(&mut batch, 4).unwrap(), 0);
    }

    #[test]
    fn file_stream_source_missing_file_is_io() {
        let err = FileStreamSource::open(Path::new("/nonexistent/lumen6-nope.l6tr")).unwrap_err();
        assert!(matches!(err, CodecError::Io(_)));
    }

    /// A scoped temp directory for tail tests that rewrite/rename files.
    struct ScopedDir {
        path: PathBuf,
    }

    impl ScopedDir {
        fn new(tag: &str) -> Self {
            use std::sync::atomic::{AtomicU64, Ordering};
            static SEQ: AtomicU64 = AtomicU64::new(0);
            let path = std::env::temp_dir().join(format!(
                "lumen6-tail-{tag}-{}-{}",
                std::process::id(),
                SEQ.fetch_add(1, Ordering::Relaxed)
            ));
            std::fs::create_dir_all(&path).expect("create temp dir");
            ScopedDir { path }
        }

        fn file(&self, name: &str) -> PathBuf {
            self.path.join(name)
        }
    }

    impl Drop for ScopedDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.path);
        }
    }

    fn poll_all(src: &mut TailSource, max: usize) -> (Vec<PacketRecord>, FillOutcome) {
        let mut out = Vec::new();
        let mut batch = RecordBatch::new();
        loop {
            match src.poll_fill(&mut batch, max).expect("poll") {
                FillOutcome::Filled(_) => out.extend(batch.iter()),
                other => return (out, other),
            }
        }
    }

    #[test]
    fn tail_source_partial_trailing_record_is_never_consumed() {
        let want = recs(20);
        let bytes = encode(&want).expect("encode");
        let dir = ScopedDir::new("partial");
        let path = dir.file("t.l6tr");
        // Write everything except the last 4 bytes: the final record is a
        // partial tail the writer has not finished appending.
        std::fs::write(&path, &bytes[..bytes.len() - 4]).unwrap();

        let mut src = TailSource::open(&path);
        let (got, state) = poll_all(&mut src, 7);
        assert_eq!(got, want[..19], "only complete records delivered");
        assert_eq!(state, FillOutcome::Pending, "partial tail means pending");
        assert_eq!(src.skipped(), 0);

        // The writer completes the record and declares EOF.
        std::fs::write(&path, &bytes).unwrap();
        std::fs::write(TailSource::eof_marker(&path), b"").unwrap();
        let mut batch = RecordBatch::new();
        assert_eq!(
            src.poll_fill(&mut batch, 100).unwrap(),
            FillOutcome::Filled(1)
        );
        assert_eq!(batch.get(0), want[19]);
        assert_eq!(src.poll_fill(&mut batch, 100).unwrap(), FillOutcome::Eof);
    }

    #[test]
    fn tail_source_sees_appends_between_polls() {
        let want = recs(300);
        let bytes = encode(&want).expect("encode");
        let dir = ScopedDir::new("append");
        let path = dir.file("t.l6tr");
        // Nothing on disk yet: the tail waits for the writer.
        let mut src = TailSource::open(&path);
        let mut batch = RecordBatch::new();
        assert_eq!(src.poll_fill(&mut batch, 10).unwrap(), FillOutcome::Pending);

        // Appear in three installments, each an exact record boundary plus
        // a ragged cut, polled in between.
        let cuts = [bytes.len() / 3, 2 * bytes.len() / 3, bytes.len()];
        let mut got = Vec::new();
        for cut in cuts {
            std::fs::write(&path, &bytes[..cut]).unwrap();
            let (part, state) = poll_all(&mut src, 64);
            got.extend(part);
            assert_eq!(state, FillOutcome::Pending, "cut={cut}");
        }
        std::fs::write(TailSource::eof_marker(&path), b"").unwrap();
        let (rest, state) = poll_all(&mut src, 64);
        got.extend(rest);
        assert_eq!(state, FillOutcome::Eof);
        assert_eq!(got, want);
        assert_eq!(src.rotations(), 0);
        assert_eq!(src.truncations(), 0);
    }

    #[test]
    fn tail_source_truncation_restarts_from_header() {
        let first = recs(50);
        let second: Vec<PacketRecord> = (0..30u64)
            .map(|i| PacketRecord::udp(1_000_000 + i, 0xaa, i as u128, 1, 53, 90))
            .collect();
        let dir = ScopedDir::new("trunc");
        let path = dir.file("t.l6tr");
        std::fs::write(&path, encode(&first).unwrap()).unwrap();

        let reg = MetricsRegistry::global();
        let trunc_before = reg.counter("trace.tail.truncations").get();

        let mut src = TailSource::open(&path);
        let (got, state) = poll_all(&mut src, 16);
        assert_eq!(got, first);
        assert_eq!(state, FillOutcome::Pending);

        // The writer truncates and starts a fresh stream in place.
        std::fs::write(&path, encode(&second).unwrap()).unwrap();
        std::fs::write(TailSource::eof_marker(&path), b"").unwrap();
        let (got, state) = poll_all(&mut src, 16);
        assert_eq!(got, second, "decode restarted from the new header");
        assert_eq!(state, FillOutcome::Eof);
        assert_eq!(src.truncations(), 1);
        assert!(reg.counter("trace.tail.truncations").get() > trunc_before);
    }

    #[cfg(unix)]
    #[test]
    fn tail_source_rotation_by_rename_drains_old_then_follows_new() {
        let old_recs = recs(40);
        let new_recs: Vec<PacketRecord> = (0..25u64)
            .map(|i| PacketRecord::tcp(9_000_000 + i, 0xbb, i as u128, 1, 443, 60))
            .collect();
        let dir = ScopedDir::new("rotate");
        let path = dir.file("t.l6tr");
        std::fs::write(&path, encode(&old_recs).unwrap()).unwrap();

        let reg = MetricsRegistry::global();
        let rot_before = reg.counter("trace.tail.rotations").get();

        let mut src = TailSource::open(&path);
        let mut batch = RecordBatch::new();
        // Read part of the old file, then rotate underneath the tail.
        assert_eq!(
            src.poll_fill(&mut batch, 15).unwrap(),
            FillOutcome::Filled(15)
        );
        let mut got: Vec<PacketRecord> = batch.iter().collect();
        std::fs::rename(&path, dir.file("t.l6tr.1")).unwrap();
        std::fs::write(&path, encode(&new_recs).unwrap()).unwrap();
        std::fs::write(TailSource::eof_marker(&path), b"").unwrap();

        let (rest, state) = poll_all(&mut src, 15);
        got.extend(rest);
        assert_eq!(state, FillOutcome::Eof);
        let mut want = old_recs.clone();
        want.extend(&new_recs);
        assert_eq!(got, want, "old incarnation drained before the successor");
        assert_eq!(src.rotations(), 1);
        assert!(reg.counter("trace.tail.rotations").get() > rot_before);
    }

    #[test]
    fn tail_source_permissive_quarantines_field_overflow() {
        // Reuse the codec test vector: record 5 has an out-of-range dport.
        let (bytes, expected) = crate::codec::tests_support::bytes_with_bad_dport();
        let dir = ScopedDir::new("quarantine");
        let path = dir.file("t.l6tr");
        std::fs::write(&path, &bytes).unwrap();
        std::fs::write(TailSource::eof_marker(&path), b"").unwrap();

        let reg = MetricsRegistry::global();
        let skip_before = reg.counter("trace.tail.skipped.field_overflow").get();

        let mut src = TailSource::open(&path).permissive(true);
        let (got, state) = poll_all(&mut src, 4);
        assert_eq!(got, expected);
        assert_eq!(state, FillOutcome::Eof);
        assert_eq!(src.skipped(), 1);
        assert!(reg.counter("trace.tail.skipped.field_overflow").get() > skip_before);

        // Strict mode surfaces the same stream as an error instead.
        let mut strict = TailSource::open(&path);
        let mut batch = RecordBatch::new();
        let err = loop {
            match strict.poll_fill(&mut batch, 4) {
                Ok(FillOutcome::Filled(_)) => {}
                Ok(other) => panic!("strict tail must error, got {other:?}"),
                Err(e) => break e,
            }
        };
        assert!(matches!(err, CodecError::FieldOverflow("dport", _)));
        // Fused after the error.
        assert_eq!(strict.poll_fill(&mut batch, 4).unwrap(), FillOutcome::Eof);
    }

    #[test]
    fn tail_source_position_resume_roundtrip() {
        let want = recs(200);
        let dir = ScopedDir::new("resume");
        let path = dir.file("t.l6tr");
        std::fs::write(&path, encode(&want).unwrap()).unwrap();
        std::fs::write(TailSource::eof_marker(&path), b"").unwrap();

        let mut src = TailSource::open(&path);
        let mut batch = RecordBatch::new();
        assert_eq!(
            src.poll_fill(&mut batch, 80).unwrap(),
            FillOutcome::Filled(80)
        );
        let pos = src.position();
        assert_eq!(pos.prev_ts, batch.get(79).ts_ms);

        let mut fresh = TailSource::open(&path);
        fresh.resume(pos).unwrap();
        let (tail, state) = poll_all(&mut fresh, 33);
        assert_eq!(state, FillOutcome::Eof);
        assert_eq!(tail, want[80..].to_vec());
    }
}
