//! Classic pcap import/export (LINKTYPE_RAW, IPv6).
//!
//! The native `.l6tr` format stores exactly what detection needs; this
//! module bridges to the rest of the world:
//!
//! - [`write_pcap`] synthesizes real IPv6 packets — proper headers, valid
//!   TCP/UDP/ICMPv6 checksums over the IPv6 pseudo-header — so generated
//!   traces open in Wireshark/tcpdump and can drive other tools.
//! - [`read_pcap`] ingests captures (both endiannesses, micro- and
//!   nanosecond variants, LINKTYPE_RAW and LINKTYPE_ETHERNET) and reduces
//!   each IPv6 TCP/UDP/ICMPv6 packet to a [`PacketRecord`]; anything else
//!   (IPv4, ARP, extension-header chains) is counted and skipped, never an
//!   error.
//!
//! Timestamps map between pcap epoch seconds and the simulation clock
//! 1:1 — a capture taken "now" simply lands far past the simulated window,
//! which is irrelevant to detection (only deltas matter).

use crate::record::{PacketRecord, Transport};
use lumen6_addr::cast::{sat_u16, sat_u32};
use lumen6_obs::MetricsRegistry;
use std::io::{self, Read, Write};

/// LINKTYPE_RAW: packets start directly with the IP header.
pub const LINKTYPE_RAW: u32 = 101;
/// LINKTYPE_ETHERNET.
pub const LINKTYPE_ETHERNET: u32 = 1;

const MAGIC_US: u32 = 0xa1b2_c3d4;
const MAGIC_NS: u32 = 0xa1b2_3c4d;

/// Errors from pcap parsing.
#[derive(Debug)]
pub enum PcapError {
    /// Not a pcap file (unknown magic).
    BadMagic(u32),
    /// Link type this reader does not handle.
    UnsupportedLinkType(u32),
    /// Truncated global or record header.
    Truncated,
    /// A record field does not fit its on-disk width (e.g. a timestamp past
    /// the 32-bit pcap epoch range).
    FieldOverflow(&'static str, u64),
    /// Underlying I/O failure.
    Io(io::Error),
}

impl std::fmt::Display for PcapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PcapError::BadMagic(m) => write!(f, "not a pcap file (magic {m:#010x})"),
            PcapError::UnsupportedLinkType(lt) => write!(f, "unsupported link type {lt}"),
            PcapError::Truncated => write!(f, "truncated pcap"),
            PcapError::FieldOverflow(name, v) => {
                write!(f, "field {name} = {v} does not fit the pcap format")
            }
            PcapError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for PcapError {}

impl From<io::Error> for PcapError {
    fn from(e: io::Error) -> Self {
        PcapError::Io(e)
    }
}

// ---------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------

/// Internet checksum (RFC 1071) over the given byte slices.
fn checksum(parts: &[&[u8]]) -> u16 {
    let mut sum = 0u32;
    for part in parts {
        let mut chunks = part.chunks_exact(2);
        for c in &mut chunks {
            sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
        }
        if let [last] = chunks.remainder() {
            sum += u32::from(u16::from_be_bytes([*last, 0]));
        }
    }
    while sum >> 16 != 0 {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    // The fold loop above leaves `sum` < 0x10000, so the mask is exact.
    !((sum & 0xffff) as u16)
}

/// Builds the on-wire IPv6 packet for a record: header + transport header +
/// zero padding up to the recorded packet length.
fn build_packet(r: &PacketRecord) -> Vec<u8> {
    let next_header = r.proto.to_byte();
    let transport_len = match r.proto {
        Transport::Tcp => 20usize,
        Transport::Udp => 8,
        Transport::Icmpv6 => 8,
        Transport::Other(_) => 0,
    };
    // Total IP length is the recorded length, but never shorter than the
    // headers we must emit.
    let total = usize::from(r.len).max(40 + transport_len);
    let payload_len = total - 40;
    let mut pkt = Vec::with_capacity(total);

    // IPv6 header.
    pkt.extend_from_slice(&[0x60, 0, 0, 0]); // version 6, tc 0, flow 0
    pkt.extend_from_slice(&sat_u16(payload_len).to_be_bytes());
    pkt.push(next_header);
    pkt.push(64); // hop limit
    pkt.extend_from_slice(&r.src.to_be_bytes());
    pkt.extend_from_slice(&r.dst.to_be_bytes());

    // Pseudo-header for transport checksums.
    let mut pseudo = Vec::with_capacity(40);
    pseudo.extend_from_slice(&r.src.to_be_bytes());
    pseudo.extend_from_slice(&r.dst.to_be_bytes());
    pseudo.extend_from_slice(&sat_u32(payload_len).to_be_bytes());
    pseudo.extend_from_slice(&[0, 0, 0, next_header]);

    let pad = payload_len - transport_len;
    let padding = vec![0u8; pad];
    match r.proto {
        Transport::Tcp => {
            let mut tcp = Vec::with_capacity(20);
            tcp.extend_from_slice(&r.sport.to_be_bytes());
            tcp.extend_from_slice(&r.dport.to_be_bytes());
            tcp.extend_from_slice(&1u32.to_be_bytes()); // seq
            tcp.extend_from_slice(&0u32.to_be_bytes()); // ack
            tcp.push(5 << 4); // data offset 5 words
            tcp.push(0x02); // SYN
            tcp.extend_from_slice(&64_240u16.to_be_bytes()); // window
            tcp.extend_from_slice(&[0, 0]); // checksum placeholder
            tcp.extend_from_slice(&[0, 0]); // urgent
            let ck = checksum(&[&pseudo, &tcp, &padding]);
            tcp[16..18].copy_from_slice(&ck.to_be_bytes());
            pkt.extend_from_slice(&tcp);
        }
        Transport::Udp => {
            let mut udp = Vec::with_capacity(8);
            udp.extend_from_slice(&r.sport.to_be_bytes());
            udp.extend_from_slice(&r.dport.to_be_bytes());
            udp.extend_from_slice(&sat_u16(payload_len).to_be_bytes());
            udp.extend_from_slice(&[0, 0]);
            let ck = checksum(&[&pseudo, &udp, &padding]);
            // UDP checksum 0 means "none" — RFC 8200 forbids it for IPv6;
            // an all-zero result is transmitted as 0xffff.
            let ck = if ck == 0 { 0xffff } else { ck };
            udp[6..8].copy_from_slice(&ck.to_be_bytes());
            pkt.extend_from_slice(&udp);
        }
        Transport::Icmpv6 => {
            // sport carries the type, dport the code.
            let mut icmp = vec![r.sport as u8, r.dport as u8, 0, 0];
            icmp.extend_from_slice(&[0, 0x2a, 0, 1]); // identifier/sequence
            let ck = checksum(&[&pseudo, &icmp, &padding]);
            icmp[2..4].copy_from_slice(&ck.to_be_bytes());
            pkt.extend_from_slice(&icmp);
        }
        Transport::Other(_) => {}
    }
    pkt.extend_from_slice(&padding);
    pkt
}

/// Writes records as a classic pcap file (microsecond timestamps,
/// LINKTYPE_RAW). Returns the number of packets written.
///
/// Classic pcap stores epoch seconds in 32 bits; a record whose timestamp
/// does not fit is a [`PcapError::FieldOverflow`] — previously it was
/// silently wrapped, producing a capture with scrambled times.
pub fn write_pcap<W: Write>(records: &[PacketRecord], mut out: W) -> Result<u64, PcapError> {
    // Global header.
    out.write_all(&MAGIC_US.to_le_bytes())?;
    out.write_all(&2u16.to_le_bytes())?; // major
    out.write_all(&4u16.to_le_bytes())?; // minor
    out.write_all(&0i32.to_le_bytes())?; // thiszone
    out.write_all(&0u32.to_le_bytes())?; // sigfigs
    out.write_all(&65_535u32.to_le_bytes())?; // snaplen
    out.write_all(&LINKTYPE_RAW.to_le_bytes())?;

    for r in records {
        let ts_sec = r.ts_ms / 1000;
        let ts_sec =
            u32::try_from(ts_sec).map_err(|_| PcapError::FieldOverflow("ts_sec", ts_sec))?;
        let pkt = build_packet(r);
        out.write_all(&ts_sec.to_le_bytes())?;
        out.write_all(&(((r.ts_ms % 1000) * 1000) as u32).to_le_bytes())?;
        let wire_len = sat_u32(pkt.len());
        out.write_all(&wire_len.to_le_bytes())?;
        out.write_all(&wire_len.to_le_bytes())?;
        out.write_all(&pkt)?;
    }
    out.flush()?;
    MetricsRegistry::global()
        .counter("trace.pcap.packets_written")
        .add(records.len() as u64);
    Ok(records.len() as u64)
}

// ---------------------------------------------------------------------
// Reading
// ---------------------------------------------------------------------

/// Outcome of importing a pcap.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PcapImport {
    /// Parsed IPv6 TCP/UDP/ICMPv6 records, in capture order.
    pub records: Vec<PacketRecord>,
    /// Packets skipped (non-IPv6, unhandled next header, truncated data).
    pub skipped: u64,
}

fn u16_at(b: &[u8], o: usize) -> u16 {
    u16::from_be_bytes([b[o], b[o + 1]])
}

/// Parses one link-layer frame into a record. Returns `None` for anything
/// that is not a plain IPv6 TCP/UDP/ICMPv6 packet. A frame longer than the
/// 16-bit record length field clamps `len` to `u16::MAX` and bumps
/// `truncated`.
fn parse_frame(
    link_type: u32,
    ts_ms: u64,
    frame: &[u8],
    truncated: &mut u64,
) -> Option<PacketRecord> {
    let ip = match link_type {
        LINKTYPE_RAW => frame,
        LINKTYPE_ETHERNET => {
            if frame.len() < 14 || u16_at(frame, 12) != 0x86dd {
                return None;
            }
            &frame[14..]
        }
        _ => return None,
    };
    if ip.len() < 40 || ip[0] >> 4 != 6 {
        return None;
    }
    let next_header = ip[6];
    let src = u128::from_be_bytes(ip[8..24].try_into().ok()?);
    let dst = u128::from_be_bytes(ip[24..40].try_into().ok()?);
    let transport = &ip[40..];
    let (proto, sport, dport) = match next_header {
        6 if transport.len() >= 4 => (Transport::Tcp, u16_at(transport, 0), u16_at(transport, 2)),
        17 if transport.len() >= 4 => (Transport::Udp, u16_at(transport, 0), u16_at(transport, 2)),
        58 if transport.len() >= 2 => (
            Transport::Icmpv6,
            u16::from(transport[0]),
            u16::from(transport[1]),
        ),
        _ => return None,
    };
    if ip.len() > usize::from(u16::MAX) {
        *truncated += 1;
    }
    Some(PacketRecord {
        ts_ms,
        src,
        dst,
        proto,
        sport,
        dport,
        len: sat_u16(ip.len()),
    })
}

/// Largest frame the reader will buffer. Classic pcap snaplen tops out at
/// 64 KiB in practice; anything bigger is treated as unparseable and the
/// bytes are discarded in chunks so a corrupt length field cannot force a
/// giant allocation.
const MAX_FRAME_LEN: usize = 256 * 1024;

/// Locally accumulated import telemetry, flushed to the global registry on
/// drop (`trace.pcap.*`).
#[derive(Debug, Default)]
struct PcapStats {
    imported: u64,
    skipped: u64,
    truncated: u64,
}

impl PcapStats {
    fn flush(&mut self) {
        let reg = MetricsRegistry::global();
        if self.imported > 0 {
            reg.counter("trace.pcap.frames_imported").add(self.imported);
        }
        if self.skipped > 0 {
            reg.counter("trace.pcap.frames_skipped").add(self.skipped);
        }
        if self.truncated > 0 {
            reg.counter("trace.pcap.frames_truncated")
                .add(self.truncated);
        }
        // Field-by-field: `*self = default()` would recurse through Drop.
        self.imported = 0;
        self.skipped = 0;
        self.truncated = 0;
    }
}

impl Drop for PcapStats {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Streaming classic-pcap reader over any [`Read`] source in bounded
/// memory: only the 24-byte global header, one 16-byte record header, and
/// one frame (≤ [`MAX_FRAME_LEN`]) are ever buffered, matching the
/// [`StreamingTraceReader`](crate::codec::StreamingTraceReader) guarantee.
///
/// Yields each parseable IPv6 TCP/UDP/ICMPv6 packet; everything else
/// (non-IPv6 frames, unhandled next headers, truncated tails, oversized
/// frames) is counted in [`skipped`](PcapReader::skipped) and never an
/// error. I/O failures surface as `Err` items and fuse the iterator.
#[derive(Debug)]
pub struct PcapReader<R: Read> {
    src: R,
    big_endian: bool,
    nanos: bool,
    link_type: u32,
    frame: Vec<u8>,
    skipped: u64,
    stats: PcapStats,
    done: bool,
}

impl<R: Read> PcapReader<R> {
    /// Reads and validates the 24-byte global header.
    pub fn new(mut src: R) -> Result<Self, PcapError> {
        let mut header = [0u8; 24];
        src.read_exact(&mut header).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                PcapError::Truncated
            } else {
                PcapError::Io(e)
            }
        })?;
        let magic = [header[0], header[1], header[2], header[3]];
        let magic_le = u32::from_le_bytes(magic);
        let magic_be = u32::from_be_bytes(magic);
        let (big_endian, nanos) = if magic_le == MAGIC_US {
            (false, false)
        } else if magic_le == MAGIC_NS {
            (false, true)
        } else if magic_be == MAGIC_US {
            (true, false)
        } else if magic_be == MAGIC_NS {
            (true, true)
        } else {
            return Err(PcapError::BadMagic(magic_le));
        };
        let link_bytes = [header[20], header[21], header[22], header[23]];
        let link_type = if big_endian {
            u32::from_be_bytes(link_bytes)
        } else {
            u32::from_le_bytes(link_bytes)
        };
        if link_type != LINKTYPE_RAW && link_type != LINKTYPE_ETHERNET {
            return Err(PcapError::UnsupportedLinkType(link_type));
        }
        Ok(PcapReader {
            src,
            big_endian,
            nanos,
            link_type,
            frame: Vec::new(),
            skipped: 0,
            stats: PcapStats::default(),
            done: false,
        })
    }

    /// Packets skipped so far (non-IPv6, unhandled next header, truncated
    /// or oversized data).
    pub fn skipped(&self) -> u64 {
        self.skipped
    }

    fn u32_field(&self, b: &[u8; 16], o: usize) -> u32 {
        let arr = [b[o], b[o + 1], b[o + 2], b[o + 3]];
        if self.big_endian {
            u32::from_be_bytes(arr)
        } else {
            u32::from_le_bytes(arr)
        }
    }

    /// Fills `out` from the source. Returns how many bytes were read before
    /// EOF (== `out.len()` when fully filled).
    fn fill(&mut self, out: &mut [u8]) -> Result<usize, PcapError> {
        let mut filled = 0;
        while filled < out.len() {
            let n = self.src.read(&mut out[filled..])?;
            if n == 0 {
                break;
            }
            filled += n;
        }
        Ok(filled)
    }

    /// Discards exactly `n` bytes in bounded chunks. Returns false on EOF.
    fn discard(&mut self, mut n: usize) -> Result<bool, PcapError> {
        let mut sink = [0u8; 8 * 1024];
        while n > 0 {
            let want = n.min(sink.len());
            let got = self.fill(&mut sink[..want])?;
            if got == 0 {
                return Ok(false);
            }
            n -= got;
        }
        Ok(true)
    }

    fn next_packet(&mut self) -> Result<Option<PacketRecord>, PcapError> {
        loop {
            let mut rec_hdr = [0u8; 16];
            let got = self.fill(&mut rec_hdr)?;
            if got == 0 {
                return Ok(None); // clean EOF at a record boundary
            }
            if got < rec_hdr.len() {
                // Trailing garbage shorter than a record header: count and stop.
                self.skipped += 1;
                self.stats.skipped += 1;
                return Ok(None);
            }
            let ts_sec = u64::from(self.u32_field(&rec_hdr, 0));
            let ts_frac = u64::from(self.u32_field(&rec_hdr, 4));
            let incl = self.u32_field(&rec_hdr, 8) as usize;
            if incl > MAX_FRAME_LEN {
                self.skipped += 1;
                self.stats.skipped += 1;
                if !self.discard(incl)? {
                    return Ok(None);
                }
                continue;
            }
            self.frame.resize(incl, 0);
            let mut frame = std::mem::take(&mut self.frame);
            let got = self.fill(&mut frame)?;
            self.frame = frame;
            if got < incl {
                self.skipped += 1;
                self.stats.skipped += 1;
                return Ok(None);
            }
            let ts_ms = ts_sec * 1000
                + if self.nanos {
                    ts_frac / 1_000_000
                } else {
                    ts_frac / 1000
                };
            match parse_frame(
                self.link_type,
                ts_ms,
                &self.frame,
                &mut self.stats.truncated,
            ) {
                Some(r) => {
                    self.stats.imported += 1;
                    return Ok(Some(r));
                }
                None => {
                    self.skipped += 1;
                    self.stats.skipped += 1;
                }
            }
        }
    }
}

impl<R: Read> Iterator for PcapReader<R> {
    type Item = Result<PacketRecord, PcapError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        match self.next_packet() {
            Ok(Some(r)) => Some(Ok(r)),
            Ok(None) => {
                self.done = true;
                None
            }
            Err(e) => {
                self.done = true;
                Some(Err(e))
            }
        }
    }
}

/// Reads a classic pcap capture into memory.
///
/// Decodes incrementally through [`PcapReader`] — only the parsed records
/// are materialized, never the raw capture bytes, so peak memory is
/// proportional to the usable packets rather than the file size.
pub fn read_pcap<R: Read>(src: R) -> Result<PcapImport, PcapError> {
    let mut reader = PcapReader::new(src)?;
    let mut records = Vec::new();
    for item in reader.by_ref() {
        records.push(item?);
    }
    Ok(PcapImport {
        records,
        skipped: reader.skipped(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<PacketRecord> {
        vec![
            PacketRecord::tcp(1_500, 0x2001 << 112 | 1, 0x2001 << 112 | 2, 40_000, 22, 60),
            PacketRecord::udp(2_000, 3, 4, 500, 500, 120),
            PacketRecord::icmpv6_echo(3_250, 5, 6, 96),
            PacketRecord::tcp(4_000, 7, 8, 1, 65_535, 1_400),
        ]
    }

    #[test]
    fn roundtrip_preserves_records() {
        let recs = sample();
        let mut buf = Vec::new();
        assert_eq!(write_pcap(&recs, &mut buf).unwrap(), 4);
        let imported = read_pcap(&buf[..]).unwrap();
        assert_eq!(imported.skipped, 0);
        assert_eq!(imported.records.len(), recs.len());
        for (got, want) in imported.records.iter().zip(&recs) {
            assert_eq!(got.src, want.src);
            assert_eq!(got.dst, want.dst);
            assert_eq!(got.proto, want.proto);
            assert_eq!(got.dport, want.dport);
            assert_eq!(got.sport, want.sport);
            // Millisecond timestamps survive the µs encoding.
            assert_eq!(got.ts_ms, want.ts_ms);
            // Length may be padded up to the minimum wire size.
            assert!(got.len >= want.len.min(60));
        }
    }

    #[test]
    fn tcp_checksum_is_valid() {
        // Verify our own checksum: recomputing over the emitted packet with
        // the checksum field zeroed must reproduce the stored value.
        let r = PacketRecord::tcp(0, 0xaaaa, 0xbbbb, 1234, 80, 80);
        let pkt = build_packet(&r);
        assert_eq!(pkt[0] >> 4, 6, "IPv6 version");
        let payload_len = usize::from(u16_at(&pkt, 4));
        let stored = u16_at(&pkt, 40 + 16);
        let mut zeroed = pkt.clone();
        zeroed[40 + 16] = 0;
        zeroed[40 + 17] = 0;
        let mut pseudo = Vec::new();
        pseudo.extend_from_slice(&r.src.to_be_bytes());
        pseudo.extend_from_slice(&r.dst.to_be_bytes());
        pseudo.extend_from_slice(&(payload_len as u32).to_be_bytes());
        pseudo.extend_from_slice(&[0, 0, 0, 6]);
        assert_eq!(checksum(&[&pseudo, &zeroed[40..]]), stored);
    }

    #[test]
    fn udp_and_icmpv6_checksums_verify_to_zero() {
        // RFC 1071: checksumming a packet *including* its checksum yields 0.
        for r in [
            PacketRecord::udp(0, 1, 2, 500, 500, 200),
            PacketRecord::icmpv6_echo(0, 1, 2, 96),
        ] {
            let pkt = build_packet(&r);
            let payload_len = usize::from(u16_at(&pkt, 4));
            let mut pseudo = Vec::new();
            pseudo.extend_from_slice(&r.src.to_be_bytes());
            pseudo.extend_from_slice(&r.dst.to_be_bytes());
            pseudo.extend_from_slice(&(payload_len as u32).to_be_bytes());
            pseudo.extend_from_slice(&[0, 0, 0, r.proto.to_byte()]);
            let full = checksum(&[&pseudo, &pkt[40..]]);
            assert_eq!(full, 0, "{:?}", r.proto);
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let err = read_pcap(&b"NOTPCAP_AT_ALL_________"[..]).unwrap_err();
        assert!(matches!(err, PcapError::Truncated | PcapError::BadMagic(_)));
        let mut bogus = [0u8; 24];
        bogus[0..4].copy_from_slice(&0xdeadbeefu32.to_le_bytes());
        assert!(matches!(
            read_pcap(&bogus[..]).unwrap_err(),
            PcapError::BadMagic(_)
        ));
    }

    #[test]
    fn truncated_record_counts_as_skipped() {
        let mut buf = Vec::new();
        write_pcap(&sample(), &mut buf).unwrap();
        let cut = &buf[..buf.len() - 10];
        let imported = read_pcap(cut).unwrap();
        assert_eq!(imported.records.len(), 3);
        assert_eq!(imported.skipped, 1);
    }

    #[test]
    fn ethernet_frames_parse_and_non_ipv6_skipped() {
        // Hand-build an Ethernet-linktype capture with one IPv6 TCP packet
        // and one ARP frame.
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC_US.to_le_bytes());
        buf.extend_from_slice(&2u16.to_le_bytes());
        buf.extend_from_slice(&4u16.to_le_bytes());
        buf.extend_from_slice(&0i32.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&65_535u32.to_le_bytes());
        buf.extend_from_slice(&LINKTYPE_ETHERNET.to_le_bytes());

        let r = PacketRecord::tcp(5_000, 0x11, 0x22, 1000, 443, 60);
        let ip = build_packet(&r);
        let mut frame = vec![0u8; 12];
        frame.extend_from_slice(&0x86ddu16.to_be_bytes());
        frame.extend_from_slice(&ip);
        buf.extend_from_slice(&5u32.to_le_bytes()); // ts_sec
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&(frame.len() as u32).to_le_bytes());
        buf.extend_from_slice(&(frame.len() as u32).to_le_bytes());
        buf.extend_from_slice(&frame);

        // An ARP frame (ethertype 0x0806).
        let mut arp = vec![0u8; 12];
        arp.extend_from_slice(&0x0806u16.to_be_bytes());
        arp.extend_from_slice(&[0u8; 28]);
        buf.extend_from_slice(&6u32.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&(arp.len() as u32).to_le_bytes());
        buf.extend_from_slice(&(arp.len() as u32).to_le_bytes());
        buf.extend_from_slice(&arp);

        let imported = read_pcap(&buf[..]).unwrap();
        assert_eq!(imported.records.len(), 1);
        assert_eq!(imported.skipped, 1);
        assert_eq!(imported.records[0].dport, 443);
        assert_eq!(imported.records[0].src, 0x11);
    }

    #[test]
    fn big_endian_and_nanosecond_captures_parse() {
        // Big-endian, nanosecond-resolution header with one RAW IPv6 packet.
        let r = PacketRecord::udp(7_000, 9, 10, 53, 53, 80);
        let ip = build_packet(&r);
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC_NS.to_be_bytes());
        buf.extend_from_slice(&2u16.to_be_bytes());
        buf.extend_from_slice(&4u16.to_be_bytes());
        buf.extend_from_slice(&0i32.to_be_bytes());
        buf.extend_from_slice(&0u32.to_be_bytes());
        buf.extend_from_slice(&65_535u32.to_be_bytes());
        buf.extend_from_slice(&LINKTYPE_RAW.to_be_bytes());
        buf.extend_from_slice(&7u32.to_be_bytes()); // sec
        buf.extend_from_slice(&500_000u32.to_be_bytes()); // ns = 0.5 ms
        buf.extend_from_slice(&(ip.len() as u32).to_be_bytes());
        buf.extend_from_slice(&(ip.len() as u32).to_be_bytes());
        buf.extend_from_slice(&ip);
        let imported = read_pcap(&buf[..]).unwrap();
        assert_eq!(imported.records.len(), 1);
        assert_eq!(imported.records[0].ts_ms, 7_000);
        assert_eq!(imported.records[0].dport, 53);
    }

    #[test]
    fn unsupported_link_type_is_an_error() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC_US.to_le_bytes());
        buf.extend_from_slice(&[0u8; 16]);
        buf.extend_from_slice(&147u32.to_le_bytes()); // USER0
        assert!(matches!(
            read_pcap(&buf[..]).unwrap_err(),
            PcapError::UnsupportedLinkType(147)
        ));
    }

    #[test]
    fn empty_capture_is_fine() {
        let mut buf = Vec::new();
        write_pcap(&[], &mut buf).unwrap();
        let imported = read_pcap(&buf[..]).unwrap();
        assert!(imported.records.is_empty());
        assert_eq!(imported.skipped, 0);
    }

    #[test]
    fn timestamp_past_u32_epoch_is_field_overflow() {
        // 2^32 seconds (~year 2106) does not fit the classic pcap ts_sec
        // field; the writer must refuse instead of silently wrapping.
        let r = PacketRecord::tcp((u64::from(u32::MAX) + 1) * 1000, 1, 2, 1, 22, 60);
        let err = write_pcap(&[r], Vec::new()).unwrap_err();
        assert!(matches!(err, PcapError::FieldOverflow("ts_sec", _)));
        // The last representable second is still fine.
        let r = PacketRecord::tcp(u64::from(u32::MAX) * 1000, 1, 2, 1, 22, 60);
        assert_eq!(write_pcap(&[r], Vec::new()).unwrap(), 1);
    }

    #[test]
    fn oversized_frame_clamps_len_and_counts_truncation() {
        // A RAW IPv6 frame longer than the 16-bit record length field:
        // hand-build a 70 000-byte packet (header + zero payload).
        let mut ip = vec![0u8; 70_000];
        ip[0] = 0x60; // version 6
        ip[6] = 6; // next header TCP
        ip[40..44].copy_from_slice(&[0x01, 0x00, 0x01, 0xbb]); // ports 256 → 443

        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC_US.to_le_bytes());
        buf.extend_from_slice(&2u16.to_le_bytes());
        buf.extend_from_slice(&4u16.to_le_bytes());
        buf.extend_from_slice(&0i32.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&65_535u32.to_le_bytes());
        buf.extend_from_slice(&LINKTYPE_RAW.to_le_bytes());
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&(ip.len() as u32).to_le_bytes());
        buf.extend_from_slice(&(ip.len() as u32).to_le_bytes());
        buf.extend_from_slice(&ip);

        let before = lumen6_obs::MetricsRegistry::global()
            .counter("trace.pcap.frames_truncated")
            .get();
        let imported = read_pcap(&buf[..]).unwrap();
        assert_eq!(imported.records.len(), 1);
        assert_eq!(imported.records[0].len, u16::MAX, "length clamped");
        assert_eq!(imported.records[0].dport, 443);
        let after = lumen6_obs::MetricsRegistry::global()
            .counter("trace.pcap.frames_truncated")
            .get();
        assert_eq!(after - before, 1, "clamp recorded in metrics");
    }

    #[test]
    fn absurd_length_field_skips_in_bounded_memory() {
        // A corrupt record claiming a multi-megabyte frame must not trigger
        // a matching allocation; the reader discards what bytes exist.
        let mut buf = Vec::new();
        write_pcap(&sample(), &mut buf).unwrap();
        buf.extend_from_slice(&9u32.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&(64 * 1024 * 1024u32).to_le_bytes());
        buf.extend_from_slice(&(64 * 1024 * 1024u32).to_le_bytes());
        buf.extend_from_slice(&[0u8; 100]); // only 100 of the claimed 64 MiB
        let imported = read_pcap(&buf[..]).unwrap();
        assert_eq!(imported.records.len(), 4);
        assert_eq!(imported.skipped, 1);
    }

    #[test]
    fn streaming_reader_matches_batch_import() {
        let mut buf = Vec::new();
        write_pcap(&sample(), &mut buf).unwrap();
        let mut reader = PcapReader::new(&buf[..]).unwrap();
        let streamed: Vec<PacketRecord> = reader.by_ref().collect::<Result<_, _>>().unwrap();
        assert_eq!(reader.skipped(), 0);
        assert_eq!(streamed, read_pcap(&buf[..]).unwrap().records);
    }
}
