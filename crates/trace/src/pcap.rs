//! Classic pcap import/export (LINKTYPE_RAW, IPv6).
//!
//! The native `.l6tr` format stores exactly what detection needs; this
//! module bridges to the rest of the world:
//!
//! - [`write_pcap`] synthesizes real IPv6 packets — proper headers, valid
//!   TCP/UDP/ICMPv6 checksums over the IPv6 pseudo-header — so generated
//!   traces open in Wireshark/tcpdump and can drive other tools.
//! - [`read_pcap`] ingests captures (both endiannesses, micro- and
//!   nanosecond variants, LINKTYPE_RAW and LINKTYPE_ETHERNET) and reduces
//!   each IPv6 TCP/UDP/ICMPv6 packet to a [`PacketRecord`]; anything else
//!   (IPv4, ARP, extension-header chains) is counted and skipped, never an
//!   error.
//!
//! Timestamps map between pcap epoch seconds and the simulation clock
//! 1:1 — a capture taken "now" simply lands far past the simulated window,
//! which is irrelevant to detection (only deltas matter).

use crate::record::{PacketRecord, Transport};
use std::io::{self, Read, Write};

/// LINKTYPE_RAW: packets start directly with the IP header.
pub const LINKTYPE_RAW: u32 = 101;
/// LINKTYPE_ETHERNET.
pub const LINKTYPE_ETHERNET: u32 = 1;

const MAGIC_US: u32 = 0xa1b2_c3d4;
const MAGIC_NS: u32 = 0xa1b2_3c4d;

/// Errors from pcap parsing.
#[derive(Debug)]
pub enum PcapError {
    /// Not a pcap file (unknown magic).
    BadMagic(u32),
    /// Link type this reader does not handle.
    UnsupportedLinkType(u32),
    /// Truncated global or record header.
    Truncated,
    /// Underlying I/O failure.
    Io(io::Error),
}

impl std::fmt::Display for PcapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PcapError::BadMagic(m) => write!(f, "not a pcap file (magic {m:#010x})"),
            PcapError::UnsupportedLinkType(lt) => write!(f, "unsupported link type {lt}"),
            PcapError::Truncated => write!(f, "truncated pcap"),
            PcapError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for PcapError {}

impl From<io::Error> for PcapError {
    fn from(e: io::Error) -> Self {
        PcapError::Io(e)
    }
}

// ---------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------

/// Internet checksum (RFC 1071) over the given byte slices.
fn checksum(parts: &[&[u8]]) -> u16 {
    let mut sum = 0u32;
    for part in parts {
        let mut chunks = part.chunks_exact(2);
        for c in &mut chunks {
            sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
        }
        if let [last] = chunks.remainder() {
            sum += u32::from(u16::from_be_bytes([*last, 0]));
        }
    }
    while sum >> 16 != 0 {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

/// Builds the on-wire IPv6 packet for a record: header + transport header +
/// zero padding up to the recorded packet length.
fn build_packet(r: &PacketRecord) -> Vec<u8> {
    let next_header = r.proto.to_byte();
    let transport_len = match r.proto {
        Transport::Tcp => 20usize,
        Transport::Udp => 8,
        Transport::Icmpv6 => 8,
        Transport::Other(_) => 0,
    };
    // Total IP length is the recorded length, but never shorter than the
    // headers we must emit.
    let total = usize::from(r.len).max(40 + transport_len);
    let payload_len = total - 40;
    let mut pkt = Vec::with_capacity(total);

    // IPv6 header.
    pkt.extend_from_slice(&[0x60, 0, 0, 0]); // version 6, tc 0, flow 0
    pkt.extend_from_slice(&(payload_len as u16).to_be_bytes());
    pkt.push(next_header);
    pkt.push(64); // hop limit
    pkt.extend_from_slice(&r.src.to_be_bytes());
    pkt.extend_from_slice(&r.dst.to_be_bytes());

    // Pseudo-header for transport checksums.
    let mut pseudo = Vec::with_capacity(40);
    pseudo.extend_from_slice(&r.src.to_be_bytes());
    pseudo.extend_from_slice(&r.dst.to_be_bytes());
    pseudo.extend_from_slice(&(payload_len as u32).to_be_bytes());
    pseudo.extend_from_slice(&[0, 0, 0, next_header]);

    let pad = payload_len - transport_len;
    let padding = vec![0u8; pad];
    match r.proto {
        Transport::Tcp => {
            let mut tcp = Vec::with_capacity(20);
            tcp.extend_from_slice(&r.sport.to_be_bytes());
            tcp.extend_from_slice(&r.dport.to_be_bytes());
            tcp.extend_from_slice(&1u32.to_be_bytes()); // seq
            tcp.extend_from_slice(&0u32.to_be_bytes()); // ack
            tcp.push(5 << 4); // data offset 5 words
            tcp.push(0x02); // SYN
            tcp.extend_from_slice(&64_240u16.to_be_bytes()); // window
            tcp.extend_from_slice(&[0, 0]); // checksum placeholder
            tcp.extend_from_slice(&[0, 0]); // urgent
            let ck = checksum(&[&pseudo, &tcp, &padding]);
            tcp[16..18].copy_from_slice(&ck.to_be_bytes());
            pkt.extend_from_slice(&tcp);
        }
        Transport::Udp => {
            let mut udp = Vec::with_capacity(8);
            udp.extend_from_slice(&r.sport.to_be_bytes());
            udp.extend_from_slice(&r.dport.to_be_bytes());
            udp.extend_from_slice(&(payload_len as u16).to_be_bytes());
            udp.extend_from_slice(&[0, 0]);
            let ck = checksum(&[&pseudo, &udp, &padding]);
            // UDP checksum 0 means "none" — RFC 8200 forbids it for IPv6;
            // an all-zero result is transmitted as 0xffff.
            let ck = if ck == 0 { 0xffff } else { ck };
            udp[6..8].copy_from_slice(&ck.to_be_bytes());
            pkt.extend_from_slice(&udp);
        }
        Transport::Icmpv6 => {
            // sport carries the type, dport the code.
            let mut icmp = vec![r.sport as u8, r.dport as u8, 0, 0];
            icmp.extend_from_slice(&[0, 0x2a, 0, 1]); // identifier/sequence
            let ck = checksum(&[&pseudo, &icmp, &padding]);
            icmp[2..4].copy_from_slice(&ck.to_be_bytes());
            pkt.extend_from_slice(&icmp);
        }
        Transport::Other(_) => {}
    }
    pkt.extend_from_slice(&padding);
    pkt
}

/// Writes records as a classic pcap file (microsecond timestamps,
/// LINKTYPE_RAW). Returns the number of packets written.
pub fn write_pcap<W: Write>(records: &[PacketRecord], mut out: W) -> Result<u64, PcapError> {
    // Global header.
    out.write_all(&MAGIC_US.to_le_bytes())?;
    out.write_all(&2u16.to_le_bytes())?; // major
    out.write_all(&4u16.to_le_bytes())?; // minor
    out.write_all(&0i32.to_le_bytes())?; // thiszone
    out.write_all(&0u32.to_le_bytes())?; // sigfigs
    out.write_all(&65_535u32.to_le_bytes())?; // snaplen
    out.write_all(&LINKTYPE_RAW.to_le_bytes())?;

    for r in records {
        let pkt = build_packet(r);
        out.write_all(&((r.ts_ms / 1000) as u32).to_le_bytes())?;
        out.write_all(&(((r.ts_ms % 1000) * 1000) as u32).to_le_bytes())?;
        out.write_all(&(pkt.len() as u32).to_le_bytes())?;
        out.write_all(&(pkt.len() as u32).to_le_bytes())?;
        out.write_all(&pkt)?;
    }
    out.flush()?;
    Ok(records.len() as u64)
}

// ---------------------------------------------------------------------
// Reading
// ---------------------------------------------------------------------

/// Outcome of importing a pcap.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PcapImport {
    /// Parsed IPv6 TCP/UDP/ICMPv6 records, in capture order.
    pub records: Vec<PacketRecord>,
    /// Packets skipped (non-IPv6, unhandled next header, truncated data).
    pub skipped: u64,
}

struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.pos + n > self.data.len() {
            return None;
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Some(s)
    }

    fn done(&self) -> bool {
        self.pos >= self.data.len()
    }
}

fn u16_at(b: &[u8], o: usize) -> u16 {
    u16::from_be_bytes([b[o], b[o + 1]])
}

/// Parses one link-layer frame into a record. Returns `None` for anything
/// that is not a plain IPv6 TCP/UDP/ICMPv6 packet.
fn parse_frame(link_type: u32, ts_ms: u64, frame: &[u8]) -> Option<PacketRecord> {
    let ip = match link_type {
        LINKTYPE_RAW => frame,
        LINKTYPE_ETHERNET => {
            if frame.len() < 14 || u16_at(frame, 12) != 0x86dd {
                return None;
            }
            &frame[14..]
        }
        _ => return None,
    };
    if ip.len() < 40 || ip[0] >> 4 != 6 {
        return None;
    }
    let next_header = ip[6];
    let src = u128::from_be_bytes(ip[8..24].try_into().ok()?);
    let dst = u128::from_be_bytes(ip[24..40].try_into().ok()?);
    let transport = &ip[40..];
    let (proto, sport, dport) = match next_header {
        6 if transport.len() >= 4 => (Transport::Tcp, u16_at(transport, 0), u16_at(transport, 2)),
        17 if transport.len() >= 4 => (Transport::Udp, u16_at(transport, 0), u16_at(transport, 2)),
        58 if transport.len() >= 2 => (
            Transport::Icmpv6,
            u16::from(transport[0]),
            u16::from(transport[1]),
        ),
        _ => return None,
    };
    Some(PacketRecord {
        ts_ms,
        src,
        dst,
        proto,
        sport,
        dport,
        len: ip.len().min(usize::from(u16::MAX)) as u16,
    })
}

/// Reads a classic pcap capture.
pub fn read_pcap<R: Read>(mut src: R) -> Result<PcapImport, PcapError> {
    let mut data = Vec::new();
    src.read_to_end(&mut data)?;
    let mut cur = Cursor {
        data: &data,
        pos: 0,
    };

    let header = cur.take(24).ok_or(PcapError::Truncated)?;
    let magic_le = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes"));
    let magic_be = u32::from_be_bytes(header[0..4].try_into().expect("4 bytes"));
    let (big_endian, nanos) = if magic_le == MAGIC_US {
        (false, false)
    } else if magic_le == MAGIC_NS {
        (false, true)
    } else if magic_be == MAGIC_US {
        (true, false)
    } else if magic_be == MAGIC_NS {
        (true, true)
    } else {
        return Err(PcapError::BadMagic(magic_le));
    };
    let read_u32 = |b: &[u8], o: usize| -> u32 {
        let arr: [u8; 4] = b[o..o + 4].try_into().expect("4 bytes");
        if big_endian {
            u32::from_be_bytes(arr)
        } else {
            u32::from_le_bytes(arr)
        }
    };
    let link_type = read_u32(header, 20);
    if link_type != LINKTYPE_RAW && link_type != LINKTYPE_ETHERNET {
        return Err(PcapError::UnsupportedLinkType(link_type));
    }

    let mut import = PcapImport::default();
    while !cur.done() {
        let Some(rec_hdr) = cur.take(16) else {
            // Trailing garbage shorter than a record header: count and stop.
            import.skipped += 1;
            break;
        };
        let ts_sec = u64::from(read_u32(rec_hdr, 0));
        let ts_frac = u64::from(read_u32(rec_hdr, 4));
        let incl = read_u32(rec_hdr, 8) as usize;
        let Some(frame) = cur.take(incl) else {
            import.skipped += 1;
            break;
        };
        let ts_ms = ts_sec * 1000
            + if nanos {
                ts_frac / 1_000_000
            } else {
                ts_frac / 1000
            };
        match parse_frame(link_type, ts_ms, frame) {
            Some(r) => import.records.push(r),
            None => import.skipped += 1,
        }
    }
    Ok(import)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<PacketRecord> {
        vec![
            PacketRecord::tcp(1_500, 0x2001 << 112 | 1, 0x2001 << 112 | 2, 40_000, 22, 60),
            PacketRecord::udp(2_000, 3, 4, 500, 500, 120),
            PacketRecord::icmpv6_echo(3_250, 5, 6, 96),
            PacketRecord::tcp(4_000, 7, 8, 1, 65_535, 1_400),
        ]
    }

    #[test]
    fn roundtrip_preserves_records() {
        let recs = sample();
        let mut buf = Vec::new();
        assert_eq!(write_pcap(&recs, &mut buf).unwrap(), 4);
        let imported = read_pcap(&buf[..]).unwrap();
        assert_eq!(imported.skipped, 0);
        assert_eq!(imported.records.len(), recs.len());
        for (got, want) in imported.records.iter().zip(&recs) {
            assert_eq!(got.src, want.src);
            assert_eq!(got.dst, want.dst);
            assert_eq!(got.proto, want.proto);
            assert_eq!(got.dport, want.dport);
            assert_eq!(got.sport, want.sport);
            // Millisecond timestamps survive the µs encoding.
            assert_eq!(got.ts_ms, want.ts_ms);
            // Length may be padded up to the minimum wire size.
            assert!(got.len >= want.len.min(60));
        }
    }

    #[test]
    fn tcp_checksum_is_valid() {
        // Verify our own checksum: recomputing over the emitted packet with
        // the checksum field zeroed must reproduce the stored value.
        let r = PacketRecord::tcp(0, 0xaaaa, 0xbbbb, 1234, 80, 80);
        let pkt = build_packet(&r);
        assert_eq!(pkt[0] >> 4, 6, "IPv6 version");
        let payload_len = usize::from(u16_at(&pkt, 4));
        let stored = u16_at(&pkt, 40 + 16);
        let mut zeroed = pkt.clone();
        zeroed[40 + 16] = 0;
        zeroed[40 + 17] = 0;
        let mut pseudo = Vec::new();
        pseudo.extend_from_slice(&r.src.to_be_bytes());
        pseudo.extend_from_slice(&r.dst.to_be_bytes());
        pseudo.extend_from_slice(&(payload_len as u32).to_be_bytes());
        pseudo.extend_from_slice(&[0, 0, 0, 6]);
        assert_eq!(checksum(&[&pseudo, &zeroed[40..]]), stored);
    }

    #[test]
    fn udp_and_icmpv6_checksums_verify_to_zero() {
        // RFC 1071: checksumming a packet *including* its checksum yields 0.
        for r in [
            PacketRecord::udp(0, 1, 2, 500, 500, 200),
            PacketRecord::icmpv6_echo(0, 1, 2, 96),
        ] {
            let pkt = build_packet(&r);
            let payload_len = usize::from(u16_at(&pkt, 4));
            let mut pseudo = Vec::new();
            pseudo.extend_from_slice(&r.src.to_be_bytes());
            pseudo.extend_from_slice(&r.dst.to_be_bytes());
            pseudo.extend_from_slice(&(payload_len as u32).to_be_bytes());
            pseudo.extend_from_slice(&[0, 0, 0, r.proto.to_byte()]);
            let full = checksum(&[&pseudo, &pkt[40..]]);
            assert_eq!(full, 0, "{:?}", r.proto);
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let err = read_pcap(&b"NOTPCAP_AT_ALL_________"[..]).unwrap_err();
        assert!(matches!(err, PcapError::Truncated | PcapError::BadMagic(_)));
        let mut bogus = [0u8; 24];
        bogus[0..4].copy_from_slice(&0xdeadbeefu32.to_le_bytes());
        assert!(matches!(
            read_pcap(&bogus[..]).unwrap_err(),
            PcapError::BadMagic(_)
        ));
    }

    #[test]
    fn truncated_record_counts_as_skipped() {
        let mut buf = Vec::new();
        write_pcap(&sample(), &mut buf).unwrap();
        let cut = &buf[..buf.len() - 10];
        let imported = read_pcap(cut).unwrap();
        assert_eq!(imported.records.len(), 3);
        assert_eq!(imported.skipped, 1);
    }

    #[test]
    fn ethernet_frames_parse_and_non_ipv6_skipped() {
        // Hand-build an Ethernet-linktype capture with one IPv6 TCP packet
        // and one ARP frame.
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC_US.to_le_bytes());
        buf.extend_from_slice(&2u16.to_le_bytes());
        buf.extend_from_slice(&4u16.to_le_bytes());
        buf.extend_from_slice(&0i32.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&65_535u32.to_le_bytes());
        buf.extend_from_slice(&LINKTYPE_ETHERNET.to_le_bytes());

        let r = PacketRecord::tcp(5_000, 0x11, 0x22, 1000, 443, 60);
        let ip = build_packet(&r);
        let mut frame = vec![0u8; 12];
        frame.extend_from_slice(&0x86ddu16.to_be_bytes());
        frame.extend_from_slice(&ip);
        buf.extend_from_slice(&5u32.to_le_bytes()); // ts_sec
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&(frame.len() as u32).to_le_bytes());
        buf.extend_from_slice(&(frame.len() as u32).to_le_bytes());
        buf.extend_from_slice(&frame);

        // An ARP frame (ethertype 0x0806).
        let mut arp = vec![0u8; 12];
        arp.extend_from_slice(&0x0806u16.to_be_bytes());
        arp.extend_from_slice(&[0u8; 28]);
        buf.extend_from_slice(&6u32.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&(arp.len() as u32).to_le_bytes());
        buf.extend_from_slice(&(arp.len() as u32).to_le_bytes());
        buf.extend_from_slice(&arp);

        let imported = read_pcap(&buf[..]).unwrap();
        assert_eq!(imported.records.len(), 1);
        assert_eq!(imported.skipped, 1);
        assert_eq!(imported.records[0].dport, 443);
        assert_eq!(imported.records[0].src, 0x11);
    }

    #[test]
    fn big_endian_and_nanosecond_captures_parse() {
        // Big-endian, nanosecond-resolution header with one RAW IPv6 packet.
        let r = PacketRecord::udp(7_000, 9, 10, 53, 53, 80);
        let ip = build_packet(&r);
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC_NS.to_be_bytes());
        buf.extend_from_slice(&2u16.to_be_bytes());
        buf.extend_from_slice(&4u16.to_be_bytes());
        buf.extend_from_slice(&0i32.to_be_bytes());
        buf.extend_from_slice(&0u32.to_be_bytes());
        buf.extend_from_slice(&65_535u32.to_be_bytes());
        buf.extend_from_slice(&LINKTYPE_RAW.to_be_bytes());
        buf.extend_from_slice(&7u32.to_be_bytes()); // sec
        buf.extend_from_slice(&500_000u32.to_be_bytes()); // ns = 0.5 ms
        buf.extend_from_slice(&(ip.len() as u32).to_be_bytes());
        buf.extend_from_slice(&(ip.len() as u32).to_be_bytes());
        buf.extend_from_slice(&ip);
        let imported = read_pcap(&buf[..]).unwrap();
        assert_eq!(imported.records.len(), 1);
        assert_eq!(imported.records[0].ts_ms, 7_000);
        assert_eq!(imported.records[0].dport, 53);
    }

    #[test]
    fn unsupported_link_type_is_an_error() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC_US.to_le_bytes());
        buf.extend_from_slice(&[0u8; 16]);
        buf.extend_from_slice(&147u32.to_le_bytes()); // USER0
        assert!(matches!(
            read_pcap(&buf[..]).unwrap_err(),
            PcapError::UnsupportedLinkType(147)
        ));
    }

    #[test]
    fn empty_capture_is_fine() {
        let mut buf = Vec::new();
        write_pcap(&[], &mut buf).unwrap();
        let imported = read_pcap(&buf[..]).unwrap();
        assert!(imported.records.is_empty());
        assert_eq!(imported.skipped, 0);
    }
}
