//! The [`PacketRecord`]: what a firewall log line reduces to.

use lumen6_addr::Ipv6Prefix;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Transport protocol of a logged packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Transport {
    /// TCP (only SYNs matter for scan logs, but we do not model flags).
    Tcp,
    /// UDP.
    Udp,
    /// ICMPv6; `sport`/`dport` carry (type, code) for these records.
    Icmpv6,
    /// Any other IPv6 next-header value.
    Other(u8),
}

impl Transport {
    /// Wire encoding used by the trace codec.
    pub fn to_byte(self) -> u8 {
        match self {
            Transport::Tcp => 6,
            Transport::Udp => 17,
            Transport::Icmpv6 => 58,
            Transport::Other(x) => x,
        }
    }

    /// Inverse of [`Transport::to_byte`].
    pub fn from_byte(b: u8) -> Transport {
        match b {
            6 => Transport::Tcp,
            17 => Transport::Udp,
            58 => Transport::Icmpv6,
            x => Transport::Other(x),
        }
    }

    /// Short protocol label as used in the paper's tables ("TCP/22").
    pub fn label(&self) -> &'static str {
        match self {
            Transport::Tcp => "TCP",
            Transport::Udp => "UDP",
            Transport::Icmpv6 => "ICMPv6",
            Transport::Other(_) => "OTHER",
        }
    }
}

/// One unsolicited packet as logged by a firewall or captured at a link.
///
/// This is the unit of data for the whole pipeline. 56 bytes, `Copy`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PacketRecord {
    /// Milliseconds since the simulation epoch (2021-01-01T00:00:00Z).
    pub ts_ms: u64,
    /// Source IPv6 address.
    pub src: u128,
    /// Destination IPv6 address.
    pub dst: u128,
    /// Transport protocol.
    pub proto: Transport,
    /// Source port (ICMPv6: message type).
    pub sport: u16,
    /// Destination port (ICMPv6: message code).
    pub dport: u16,
    /// IP packet length in bytes.
    pub len: u16,
}

impl PacketRecord {
    /// Convenience constructor for a TCP packet.
    pub fn tcp(ts_ms: u64, src: u128, dst: u128, sport: u16, dport: u16, len: u16) -> Self {
        PacketRecord {
            ts_ms,
            src,
            dst,
            proto: Transport::Tcp,
            sport,
            dport,
            len,
        }
    }

    /// Convenience constructor for a UDP packet.
    pub fn udp(ts_ms: u64, src: u128, dst: u128, sport: u16, dport: u16, len: u16) -> Self {
        PacketRecord {
            ts_ms,
            src,
            dst,
            proto: Transport::Udp,
            sport,
            dport,
            len,
        }
    }

    /// Convenience constructor for an ICMPv6 echo request (type 128, code 0).
    pub fn icmpv6_echo(ts_ms: u64, src: u128, dst: u128, len: u16) -> Self {
        PacketRecord {
            ts_ms,
            src,
            dst,
            proto: Transport::Icmpv6,
            sport: 128,
            dport: 0,
            len,
        }
    }

    /// The source address aggregated to the given prefix length — the
    /// scan-source aggregation primitive of the paper (§2.2).
    #[inline]
    pub fn src_prefix(&self, len: u8) -> Ipv6Prefix {
        Ipv6Prefix::new(self.src, len)
    }

    /// The destination address aggregated to the given prefix length.
    #[inline]
    pub fn dst_prefix(&self, len: u8) -> Ipv6Prefix {
        Ipv6Prefix::new(self.dst, len)
    }

    /// A (protocol, destination port) key, the paper's notion of a targeted
    /// service ("TCP/22").
    #[inline]
    pub fn service(&self) -> (Transport, u16) {
        (self.proto, self.dport)
    }
}

impl fmt::Display for PacketRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} > {} {}/{} len={}",
            self.ts_ms,
            std::net::Ipv6Addr::from(self.src),
            std::net::Ipv6Addr::from(self.dst),
            self.proto.label(),
            self.dport,
            self.len
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transport_byte_roundtrip() {
        for t in [
            Transport::Tcp,
            Transport::Udp,
            Transport::Icmpv6,
            Transport::Other(99),
        ] {
            assert_eq!(Transport::from_byte(t.to_byte()), t);
        }
        // Bytes 6/17/58 canonicalize to the named variants.
        assert_eq!(Transport::from_byte(6), Transport::Tcp);
        assert_eq!(Transport::from_byte(17), Transport::Udp);
        assert_eq!(Transport::from_byte(58), Transport::Icmpv6);
    }

    #[test]
    fn src_prefix_aggregates() {
        let r = PacketRecord::tcp(0, 0x2001_0db8_0001_0002_0003_0004_0005_0006, 1, 1, 22, 60);
        assert_eq!(r.src_prefix(64).to_string(), "2001:db8:1:2::/64");
        assert_eq!(r.src_prefix(48).to_string(), "2001:db8:1::/48");
        assert_eq!(r.src_prefix(128).bits(), r.src);
    }

    #[test]
    fn display_is_humane() {
        let r = PacketRecord::tcp(1500, 1, 2, 4000, 22, 60);
        let s = r.to_string();
        assert!(s.contains("TCP/22"), "{s}");
        assert!(s.contains("::1"), "{s}");
    }

    #[test]
    fn service_key() {
        let r = PacketRecord::udp(0, 1, 2, 500, 500, 100);
        assert_eq!(r.service(), (Transport::Udp, 500));
    }
}
