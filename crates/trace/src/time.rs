//! Simulation time: milliseconds since 2021-01-01T00:00:00Z, plus a
//! from-scratch proleptic-Gregorian calendar for day/week/month labels.
//!
//! The paper's measurement window is 2021-01-01 through 2022-03-15 (≈ 439
//! days). Weekly series (Figs. 2, 3) bucket by 7-day windows from the epoch;
//! daily series (MAWI, Figs. 5, 6) bucket by day. No wall-clock access —
//! every timestamp is synthetic and deterministic.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Milliseconds per second.
pub const SECOND_MS: u64 = 1_000;
/// Milliseconds per minute.
pub const MINUTE_MS: u64 = 60 * SECOND_MS;
/// Milliseconds per hour.
pub const HOUR_MS: u64 = 60 * MINUTE_MS;
/// Milliseconds per day.
pub const DAY_MS: u64 = 24 * HOUR_MS;
/// Milliseconds per 7-day week.
pub const WEEK_MS: u64 = 7 * DAY_MS;

/// The epoch's civil date: 2021-01-01 (a Friday).
pub const EPOCH_YEAR: i32 = 2021;
/// Days from 0000-03-01 (the algorithm's internal era origin) to 2021-01-01.
const EPOCH_DAYS_FROM_CE: i64 = days_from_civil(2021, 1, 1);

/// A timestamp in the simulation: milliseconds since 2021-01-01T00:00:00Z.
///
/// A thin newtype over `u64`; the packet record stores the raw `u64` for
/// compactness and this type is used where calendar arithmetic is needed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Builds a timestamp from a civil date (and optional time of day).
    ///
    /// Panics if the date precedes the epoch (2021-01-01).
    pub fn from_date(year: i32, month: u32, day: u32) -> SimTime {
        let d = days_from_civil(year, month, day) - EPOCH_DAYS_FROM_CE;
        assert!(
            d >= 0,
            "date {year}-{month:02}-{day:02} precedes simulation epoch"
        );
        SimTime(d as u64 * DAY_MS)
    }

    /// Timestamp with added hours/minutes/seconds.
    pub fn at(self, hour: u64, minute: u64, second: u64) -> SimTime {
        SimTime(self.0 + hour * HOUR_MS + minute * MINUTE_MS + second * SECOND_MS)
    }

    /// Raw milliseconds since the epoch.
    #[inline]
    pub fn ms(self) -> u64 {
        self.0
    }

    /// Day index since the epoch (day 0 = 2021-01-01).
    #[inline]
    pub fn day_index(self) -> u64 {
        self.0 / DAY_MS
    }

    /// Week index since the epoch (week 0 starts 2021-01-01).
    #[inline]
    pub fn week_index(self) -> u64 {
        self.0 / WEEK_MS
    }

    /// The civil (year, month, day) of this timestamp.
    pub fn civil(self) -> (i32, u32, u32) {
        civil_from_days(EPOCH_DAYS_FROM_CE + (self.0 / DAY_MS) as i64)
    }

    /// ISO-style date label, e.g. `2021-11-03`.
    pub fn date_label(self) -> String {
        let (y, m, d) = self.civil();
        format!("{y}-{m:02}-{d:02}")
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let secs = (self.0 % DAY_MS) / SECOND_MS;
        write!(
            f,
            "{}T{:02}:{:02}:{:02}Z",
            self.date_label(),
            secs / 3600,
            (secs % 3600) / 60,
            secs % 60
        )
    }
}

/// The half-open millisecond range `[start, end)` of a calendar month.
pub fn month_range(year: i32, month: u32) -> (u64, u64) {
    let start = SimTime::from_date(year, month, 1).ms();
    let (ny, nm) = if month == 12 {
        (year + 1, 1)
    } else {
        (year, month + 1)
    };
    let end = SimTime::from_date(ny, nm, 1).ms();
    (start, end)
}

/// The half-open millisecond range `[start, end)` of day `day_index`.
pub fn day_range(day_index: u64) -> (u64, u64) {
    (day_index * DAY_MS, (day_index + 1) * DAY_MS)
}

/// The half-open millisecond range `[start, end)` of week `week_index`.
pub fn week_range(week_index: u64) -> (u64, u64) {
    (week_index * WEEK_MS, (week_index + 1) * WEEK_MS)
}

/// Days from the civil era origin to `year-month-day`, proleptic Gregorian.
///
/// Howard Hinnant's `days_from_civil` algorithm; exact for all i32 years.
pub const fn days_from_civil(y: i32, m: u32, d: u32) -> i64 {
    let y = if m <= 2 { y - 1 } else { y } as i64;
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let mp = ((m as i64) + 9) % 12; // [0, 11], Mar=0
    let doy = (153 * mp + 2) / 5 + (d as i64) - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146097 + doe - 719468
}

/// Inverse of [`days_from_civil`].
pub const fn civil_from_days(z: i64) -> (i32, u32, u32) {
    let z = z + 719468;
    let era = if z >= 0 { z } else { z - 146096 } / 146097;
    let doe = z - era * 146097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    let y = if m <= 2 { y + 1 } else { y };
    (y as i32, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_day_zero() {
        let t = SimTime::from_date(2021, 1, 1);
        assert_eq!(t.ms(), 0);
        assert_eq!(t.day_index(), 0);
        assert_eq!(t.week_index(), 0);
        assert_eq!(t.date_label(), "2021-01-01");
    }

    #[test]
    fn known_dates() {
        assert_eq!(SimTime::from_date(2021, 1, 2).day_index(), 1);
        assert_eq!(SimTime::from_date(2021, 2, 1).day_index(), 31);
        assert_eq!(SimTime::from_date(2021, 12, 31).day_index(), 364);
        assert_eq!(SimTime::from_date(2022, 1, 1).day_index(), 365);
        // The paper's window end: 2022-03-15 is day 438 (439 days total).
        assert_eq!(SimTime::from_date(2022, 3, 15).day_index(), 438);
        // July 6 and Dec 24 2021, the MAWI ICMPv6 peaks.
        assert_eq!(SimTime::from_date(2021, 7, 6).date_label(), "2021-07-06");
        assert_eq!(SimTime::from_date(2021, 12, 24).date_label(), "2021-12-24");
    }

    #[test]
    fn civil_roundtrip_across_window() {
        for day in 0..500u64 {
            let t = SimTime(day * DAY_MS);
            let (y, m, d) = t.civil();
            assert_eq!(SimTime::from_date(y, m, d).day_index(), day);
        }
    }

    #[test]
    fn civil_handles_leap_year_2024() {
        let t = SimTime::from_date(2024, 2, 29);
        assert_eq!(t.civil(), (2024, 2, 29));
        assert_eq!(
            SimTime::from_date(2024, 3, 1).day_index(),
            t.day_index() + 1
        );
    }

    #[test]
    #[should_panic(expected = "precedes simulation epoch")]
    fn pre_epoch_dates_panic() {
        SimTime::from_date(2020, 12, 31);
    }

    #[test]
    fn month_range_november_2021() {
        let (s, e) = month_range(2021, 11);
        assert_eq!(SimTime(s).date_label(), "2021-11-01");
        assert_eq!(SimTime(e).date_label(), "2021-12-01");
        assert_eq!((e - s) / DAY_MS, 30);
    }

    #[test]
    fn month_range_december_wraps_year() {
        let (s, e) = month_range(2021, 12);
        assert_eq!((e - s) / DAY_MS, 31);
        assert_eq!(SimTime(e).date_label(), "2022-01-01");
    }

    #[test]
    fn at_adds_time_of_day() {
        let t = SimTime::from_date(2021, 7, 6).at(13, 30, 15);
        assert_eq!(t.to_string(), "2021-07-06T13:30:15Z");
        assert_eq!(t.day_index(), SimTime::from_date(2021, 7, 6).day_index());
    }

    #[test]
    fn ranges_are_half_open_and_contiguous() {
        let (s0, e0) = day_range(0);
        let (s1, _) = day_range(1);
        assert_eq!(e0, s1);
        assert_eq!(s0, 0);
        let (ws, we) = week_range(3);
        assert_eq!(we - ws, WEEK_MS);
    }
}
