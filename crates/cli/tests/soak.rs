//! Subprocess tests for the `lumen6 soak` endurance harness: kill -9
//! injection with byte-identity invariants, SOAK.json shape, and the
//! failure paths (RSS bound breach, bad usage).

use std::path::PathBuf;
use std::process::Command;

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!(
            "lumen6-soak-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

fn lumen6() -> Command {
    Command::new(env!("CARGO_BIN_EXE_lumen6"))
}

/// Small-but-real soak: one injected kill -9, resume, and every invariant
/// green — the scaled-down version of the CI deep-tier smoke.
#[test]
fn soak_passes_with_one_injected_kill() {
    let dir = TempDir::new("pass");
    let out = lumen6()
        .args([
            "soak",
            "--out",
            dir.0.to_str().unwrap(),
            "--small",
            "--days",
            "3",
            "--intensity",
            "1",
            "--min-dsts",
            "25",
            "--gen-threads",
            "2",
            "--checkpoint-every",
            "400",
            "--kills",
            "1",
            "--kill-after-checkpoints",
            "1",
            "--sample-ms",
            "10",
        ])
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "soak failed:\n{stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("soak: PASS"), "no PASS line:\n{stdout}");
    assert!(
        stdout.contains("1 kill -9 injected"),
        "kill not injected:\n{stdout}"
    );

    let json = std::fs::read_to_string(dir.0.join("SOAK.json")).unwrap();
    for needle in [
        "\"passed\": true",
        "\"kills_injected\": 1",
        "\"report_identical\": true",
        "\"checkpoint_identical\": true",
        "\"all_kills_injected\": true",
        "\"rss_within_bound\": true",
        "\"kind\": \"killed\"",
        "\"kind\": \"finished\"",
        "\"rss_samples\"",
        "\"throughput_rps\"",
    ] {
        assert!(json.contains(needle), "SOAK.json missing {needle}:\n{json}");
    }
    // Both checkpoint chains survive for post-mortem inspection and are
    // byte-identical (the harness checked this; re-check from outside).
    let reference = std::fs::read(dir.0.join("reference.l6ck")).unwrap();
    let soaked = std::fs::read(dir.0.join("soak.l6ck")).unwrap();
    assert_eq!(reference, soaked, "final checkpoints diverge");
}

/// An unmeetable RSS bound fails the run with exit 2 — but SOAK.json is
/// still written, with the breach recorded.
#[test]
fn soak_rss_bound_breach_fails_but_reports() {
    let dir = TempDir::new("rss");
    let out = lumen6()
        .args([
            "soak",
            "--out",
            dir.0.to_str().unwrap(),
            "--small",
            "--days",
            "2",
            "--intensity",
            "1",
            "--checkpoint-every",
            "2000",
            "--kills",
            "0",
            "--max-rss-mb",
            "1",
            "--sample-ms",
            "10",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "want exit 2 on RSS breach");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("peak RSS exceeded"),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json = std::fs::read_to_string(dir.0.join("SOAK.json")).unwrap();
    assert!(json.contains("\"rss_within_bound\": false"), "{json}");
    assert!(json.contains("\"passed\": false"), "{json}");
}

/// Usage errors: a missing --out and a zero checkpoint cadence both exit 2
/// before any child is spawned.
#[test]
fn soak_usage_errors() {
    let out = lumen6().args(["soak"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--out"));

    let dir = TempDir::new("usage");
    let out = lumen6()
        .args([
            "soak",
            "--out",
            dir.0.to_str().unwrap(),
            "--checkpoint-every",
            "0",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("--checkpoint-every"),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}
