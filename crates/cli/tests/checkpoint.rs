//! Subprocess kill-and-resume test for `lumen6 detect --checkpoint`: a run
//! stopped after its first checkpoint (exit code 3) and then resumed must
//! produce stdout byte-identical to an uninterrupted run. Runs the real
//! binary so process death, the atomic checkpoint file, and the exit-code
//! contract are all exercised end to end.

use std::path::Path;
use std::process::Command;

fn lumen6(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_lumen6"))
        .args(args)
        .output()
        .expect("spawn lumen6")
}

fn stdout_of(out: &std::process::Output) -> String {
    assert!(
        out.status.success(),
        "lumen6 failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout.clone()).unwrap()
}

fn detect_args<'a>(trace: &'a str, ck: &'a str, extra: &[&'a str]) -> Vec<&'a str> {
    let mut v = vec![
        "detect",
        "--trace",
        trace,
        "--min-dsts",
        "50",
        "--checkpoint",
        ck,
        "--checkpoint-every",
        "5000",
    ];
    v.extend_from_slice(extra);
    v
}

fn record_count(trace: &str) -> u64 {
    stdout_of(&lumen6(&["info", "--trace", trace]))
        .lines()
        .find_map(|l| l.strip_prefix("records:"))
        .expect("info prints record count")
        .trim()
        .parse()
        .unwrap()
}

#[test]
fn kill_and_resume_is_byte_identical() {
    let dir = std::env::temp_dir().join(format!("lumen6-ckpt-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("t.l6tr");
    let t = trace.to_str().unwrap();
    stdout_of(&lumen6(&[
        "generate", "cdn", "--out", t, "--days", "6", "--seed", "9", "--small",
    ]));
    assert!(
        record_count(t) > 10_000,
        "trace too small to checkpoint mid-stream"
    );

    // Uninterrupted reference, same checkpoint cadence.
    let ref_ck = dir.join("ref.l6ck");
    let reference = stdout_of(&lumen6(&detect_args(t, ref_ck.to_str().unwrap(), &[])));
    assert!(reference.contains("session:"), "{reference}");

    // Interrupted run: dies (exit code 3) right after its first checkpoint.
    let ck = dir.join("kr.l6ck");
    let c = ck.to_str().unwrap();
    let stopped = lumen6(&detect_args(t, c, &["--stop-after", "1"]));
    assert_eq!(
        stopped.status.code(),
        Some(3),
        "stopped run must exit 3, stderr: {}",
        String::from_utf8_lossy(&stopped.stderr)
    );
    assert!(
        String::from_utf8_lossy(&stopped.stderr).contains("stopped after 1 checkpoints"),
        "stderr: {}",
        String::from_utf8_lossy(&stopped.stderr)
    );
    assert!(Path::new(c).exists(), "checkpoint file must exist");

    // Second interruption further into the stream, then a full resume.
    let stopped2 = lumen6(&detect_args(t, c, &["--stop-after", "2"]));
    assert_eq!(stopped2.status.code(), Some(3));

    let resumed = stdout_of(&lumen6(&detect_args(t, c, &[])));
    assert_eq!(
        resumed, reference,
        "resumed stdout differs from uninterrupted run"
    );

    // Resuming across a backend switch also matches.
    let ck_seq = dir.join("seq.l6ck");
    let cs = ck_seq.to_str().unwrap();
    let stopped_par = lumen6(&detect_args(
        t,
        cs,
        &["--stop-after", "1", "--threads", "2"],
    ));
    assert_eq!(stopped_par.status.code(), Some(3));
    let resumed_seq = stdout_of(&lumen6(&detect_args(t, cs, &["--sequential"])));
    assert_eq!(resumed_seq, reference, "sharded->sequential resume differs");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_checkpoint_is_a_clean_error() {
    let dir = std::env::temp_dir().join(format!("lumen6-ckpt-corrupt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("t.l6tr");
    let t = trace.to_str().unwrap();
    stdout_of(&lumen6(&[
        "generate", "cdn", "--out", t, "--days", "3", "--seed", "1", "--small",
    ]));
    let ck = dir.join("bad.l6ck");
    std::fs::write(&ck, "L6CK v1 0000000000000000 2\n{}").unwrap();
    let out = lumen6(&detect_args(t, ck.to_str().unwrap(), &[]));
    assert_eq!(out.status.code(), Some(2), "corrupt checkpoint must fail");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("checksum"),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn stop_after_without_checkpoint_is_usage_error() {
    let out = lumen6(&["detect", "--trace", "x.l6tr", "--stop-after", "1"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("--checkpoint"),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

/// `--gen-threads N` must not change a fused run's output by one byte, and
/// is rejected outside `--fused` (parallel generation has no meaning for a
/// materialized trace).
#[test]
fn gen_threads_is_output_invariant_and_fused_only() {
    let fused = [
        "detect",
        "--fused",
        "--small",
        "--days",
        "2",
        "--intensity",
        "1",
        "--min-dsts",
        "25",
    ];
    let sequential = stdout_of(&lumen6(&fused));
    for n in ["2", "8", "0"] {
        let mut args = fused.to_vec();
        args.extend(["--gen-threads", n]);
        assert_eq!(
            stdout_of(&lumen6(&args)),
            sequential,
            "gen-threads={n} output differs"
        );
    }

    let out = lumen6(&["detect", "--trace", "x.l6tr", "--gen-threads", "4"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("gen_threads"),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}
