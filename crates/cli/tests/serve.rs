//! End-to-end tests for `lumen6 serve`: a multi-tenant daemon killed with
//! SIGKILL mid-ingest and restarted must publish final per-tenant reports
//! byte-identical to an uninterrupted run, and a stop-file shutdown must
//! drain every tenant to a checkpoint + report and exit 0. Runs the real
//! binary so process death, the atomic spool writes, and the exit-code
//! contract are all exercised end to end.

use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

fn lumen6(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_lumen6"))
        .args(args)
        .output()
        .expect("spawn lumen6")
}

fn stdout_of(out: &std::process::Output) -> String {
    assert!(
        out.status.success(),
        "lumen6 failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout.clone()).unwrap()
}

fn wait_for<F: Fn() -> bool>(what: &str, cond: F) {
    let deadline = Instant::now() + Duration::from_secs(120);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

struct Env {
    dir: PathBuf,
}

impl Env {
    fn new(tag: &str) -> Env {
        let dir =
            std::env::temp_dir().join(format!("lumen6-serve-e2e-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        Env { dir }
    }

    fn path(&self, name: &str) -> PathBuf {
        self.dir.join(name)
    }

    fn gen_trace(&self, name: &str, days: u64, seed: u64) -> PathBuf {
        let path = self.path(name);
        stdout_of(&lumen6(&[
            "generate",
            "cdn",
            "--out",
            path.to_str().unwrap(),
            "--days",
            &days.to_string(),
            "--seed",
            &seed.to_string(),
            "--small",
        ]));
        path
    }
}

impl Drop for Env {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

/// The four-tenant manifest both halves of the kill test share: two trace
/// replays on different seeds, one fused synthetic stream, one tailed live
/// feed. Everything checkpoints frequently so a kill always lands between
/// grid points.
fn manifest(spool: &Path, t1: &Path, t2: &Path, tail: &Path) -> String {
    format!(
        "spool = \"{spool}\"\n\
         workers = 2\n\
         publish_every_slices = 8\n\
         \n\
         [tenants.rep1]\n\
         trace = \"{t1}\"\n\
         min_dsts = 50\n\
         sequential = true\n\
         checkpoint_every = 2000\n\
         \n\
         [tenants.rep2]\n\
         trace = \"{t2}\"\n\
         min_dsts = 50\n\
         sequential = true\n\
         checkpoint_every = 2000\n\
         \n\
         [tenants.gen]\n\
         fused = true\n\
         small = true\n\
         days = 2\n\
         seed = 5\n\
         sequential = true\n\
         checkpoint_every = 500\n\
         \n\
         [tenants.live]\n\
         tail = \"{tail}\"\n\
         min_dsts = 50\n\
         sequential = true\n\
         checkpoint_every = 2000\n",
        spool = spool.display(),
        t1 = t1.display(),
        t2 = t2.display(),
        tail = tail.display(),
    )
}

const TENANTS: [&str; 4] = ["rep1", "rep2", "gen", "live"];

#[test]
fn kill9_and_restart_reports_are_byte_identical() {
    let env = Env::new("kill9");
    let t1 = env.gen_trace("t1.l6tr", 4, 9);
    let t2 = env.gen_trace("t2.l6tr", 4, 17);
    let tail_src = env.gen_trace("tail-src.l6tr", 3, 23);

    // Reference: same four tenants, tail EOF marker present from the
    // start, run uninterrupted to completion.
    let tail_a = env.path("tail-a.l6tr");
    std::fs::copy(&tail_src, &tail_a).unwrap();
    std::fs::write(env.path("tail-a.l6tr.eof"), b"").unwrap();
    let spool_a = env.path("spool-a");
    let ref_manifest = env.path("ref.toml");
    std::fs::write(&ref_manifest, manifest(&spool_a, &t1, &t2, &tail_a)).unwrap();
    let out = lumen6(&["serve", "--config", ref_manifest.to_str().unwrap()]);
    let text = stdout_of(&out);
    assert!(text.contains("all tenants done"), "{text}");
    let reference: Vec<Vec<u8>> = TENANTS
        .iter()
        .map(|t| std::fs::read(spool_a.join(t).join("report.json")).unwrap())
        .collect();
    assert!(reference.iter().all(|r| !r.is_empty()));

    // Interrupted: same bytes via a second tail copy whose EOF marker is
    // withheld, so the live tenant provably cannot finish before the kill.
    let tail_b = env.path("tail-b.l6tr");
    std::fs::copy(&tail_src, &tail_b).unwrap();
    let spool_b = env.path("spool-b");
    let b_manifest = env.path("b.toml");
    std::fs::write(&b_manifest, manifest(&spool_b, &t1, &t2, &tail_b)).unwrap();
    let mut child = Command::new(env!("CARGO_BIN_EXE_lumen6"))
        .args(["serve", "--config", b_manifest.to_str().unwrap()])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn serve");
    // Wait until the live tenant has durable mid-ingest state, then
    // SIGKILL the daemon — no drain, no final checkpoint.
    let live_ck = spool_b.join("live/checkpoint.l6ck");
    wait_for("live tenant checkpoint", || live_ck.exists());
    child.kill().expect("kill -9 serve");
    child.wait().expect("reap serve");

    // Restart with the EOF marker now present: every tenant must recover
    // from its newest valid snapshot and finish.
    std::fs::write(env.path("tail-b.l6tr.eof"), b"").unwrap();
    let out = lumen6(&["serve", "--config", b_manifest.to_str().unwrap()]);
    let text = stdout_of(&out);
    assert!(text.contains("all tenants done"), "{text}");
    assert!(text.contains("resumed"), "{text}");

    for (tenant, expected) in TENANTS.iter().zip(&reference) {
        let got = std::fs::read(spool_b.join(tenant).join("report.json")).unwrap();
        assert_eq!(
            &got, expected,
            "tenant {tenant}: report differs from uninterrupted run"
        );
    }
}

#[test]
fn stop_file_drains_to_checkpoint_and_exits_zero() {
    let env = Env::new("stop");
    let tail = env.gen_trace("live.l6tr", 3, 31);
    let spool = env.path("spool");
    let m = env.path("serve.toml");
    std::fs::write(
        &m,
        format!(
            "spool = \"{spool}\"\n\
             workers = 2\n\
             [tenants.gen]\n\
             fused = true\n\
             small = true\n\
             days = 1\n\
             sequential = true\n\
             checkpoint_every = 200\n\
             [tenants.live]\n\
             tail = \"{tail}\"\n\
             min_dsts = 50\n\
             sequential = true\n\
             checkpoint_every = 1000\n",
            spool = spool.display(),
            tail = tail.display(),
        ),
    )
    .unwrap();
    let child = Command::new(env!("CARGO_BIN_EXE_lumen6"))
        .args(["serve", "--config", m.to_str().unwrap()])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn serve");
    // The live tenant (no EOF marker) keeps the daemon alive; wait for it
    // to make durable progress and for the fused tenant to finish its
    // stream, then request a graceful stop.
    let live_ck = spool.join("live/checkpoint.l6ck");
    wait_for("live tenant checkpoint", || live_ck.exists());
    let gen_status_path = spool.join("gen/status.json");
    wait_for("gen tenant to finish", || {
        std::fs::read_to_string(&gen_status_path).is_ok_and(|s| s.contains("\"finished\""))
    });
    std::fs::write(spool.join("shutdown"), b"").unwrap();
    let out = child.wait_with_output().expect("reap serve");
    assert!(
        out.status.success(),
        "graceful stop must exit 0, stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("stopped by stop file"), "{text}");

    for tenant in ["gen", "live"] {
        let dir = spool.join(tenant);
        for f in ["report.json", "metrics.json", "status.json"] {
            assert!(dir.join(f).exists(), "{tenant} missing {f}");
        }
    }
    // The drained tenant must leave a resumable checkpoint behind.
    assert!(live_ck.exists());
    let live_status = std::fs::read_to_string(spool.join("live/status.json")).unwrap();
    assert!(live_status.contains("\"stopped\""), "{live_status}");
    let gen_status = std::fs::read_to_string(spool.join("gen/status.json")).unwrap();
    assert!(gen_status.contains("\"finished\""), "{gen_status}");
}

#[test]
fn stop_after_is_rejected_in_tenant_configs() {
    let env = Env::new("reject");
    let m = env.path("serve.toml");
    std::fs::write(
        &m,
        "[tenants.t]\nfused = true\nsmall = true\ncheckpoint = \"c.l6ck\"\nstop_after = 1\n",
    )
    .unwrap();
    let out = lumen6(&["serve", "--config", m.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("stop_after"), "{err}");
}
