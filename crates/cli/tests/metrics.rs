//! End-to-end check of `lumen6 detect --metrics-out`: runs the real binary
//! in a subprocess (so the process-global metrics registry holds exactly one
//! command's worth of data) and validates the emitted snapshot.

use lumen6_obs::MetricsSnapshot;
use std::path::PathBuf;
use std::process::Command;

fn lumen6(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_lumen6"))
        .args(args)
        .output()
        .expect("spawn lumen6")
}

fn stdout_of(out: &std::process::Output) -> String {
    assert!(
        out.status.success(),
        "lumen6 failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout.clone()).unwrap()
}

#[test]
fn metrics_out_accounts_for_every_record() {
    let dir = std::env::temp_dir().join(format!("lumen6-metrics-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let trace: PathBuf = dir.join("t.l6tr");
    let metrics: PathBuf = dir.join("m.json");
    let t = trace.to_str().unwrap();

    stdout_of(&lumen6(&[
        "generate", "cdn", "--out", t, "--days", "5", "--seed", "3", "--small",
    ]));

    // Ground truth: the trace's own record count.
    let info = stdout_of(&lumen6(&["info", "--trace", t]));
    let records: u64 = info
        .lines()
        .find_map(|l| l.strip_prefix("records:"))
        .expect("info prints record count")
        .trim()
        .parse()
        .unwrap();
    assert!(records > 0);

    let detect_out = stdout_of(&lumen6(&[
        "detect",
        "--trace",
        t,
        "--threads",
        "4",
        "--min-dsts",
        "50",
        "--metrics-out",
        metrics.to_str().unwrap(),
    ]));
    assert!(detect_out.contains("metrics ->"), "{detect_out}");
    assert!(
        detect_out.contains("detect.parallel.shard."),
        "{detect_out}"
    );

    let json = std::fs::read_to_string(&metrics).unwrap();
    let snap: MetricsSnapshot = serde_json::from_str(&json).expect("metrics JSON parses");

    let problems = lumen6_obs::validate(&snap);
    assert!(problems.is_empty(), "invalid snapshot: {problems:?}");

    // Every record of the trace was routed to exactly one shard.
    let routed = snap.counter_sum("detect.parallel.shard.", ".packets_routed");
    assert_eq!(
        routed, records,
        "shard packets_routed must sum to the trace"
    );
    // A clean trace decodes without errors.
    assert_eq!(snap.counter_sum("trace.codec.errors.", ""), 0);
    // The codec saw every record too.
    assert_eq!(snap.counter_sum("trace.codec.records_decoded", ""), records);

    // Columnar routing telemetry: every shipped sub-batch lands in the
    // batch-rows histogram and its row counts account for every record...
    let batch_rows = snap
        .histograms
        .get("detect.shard.batch_rows")
        .expect("batch_rows histogram in snapshot");
    assert!(batch_rows.count > 0);
    // ...and the routing-skew gauge is published in permille (>= 1000 by
    // definition of max/mean).
    let imbalance = *snap
        .gauges
        .get("detect.shard.imbalance")
        .expect("imbalance gauge in snapshot");
    assert!(imbalance >= 1000, "imbalance {imbalance}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sharded_output_is_byte_identical_to_sequential() {
    let dir = std::env::temp_dir().join(format!("lumen6-metrics-seq-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("t.l6tr");
    let t = trace.to_str().unwrap();
    stdout_of(&lumen6(&[
        "generate", "cdn", "--out", t, "--days", "6", "--seed", "9", "--small",
    ]));

    let seq = stdout_of(&lumen6(&[
        "detect",
        "--trace",
        t,
        "--min-dsts",
        "50",
        "--sequential",
    ]));
    let par = stdout_of(&lumen6(&[
        "detect",
        "--trace",
        t,
        "--min-dsts",
        "50",
        "--threads",
        "4",
    ]));
    assert_eq!(par, seq, "--threads 4 output differs from --sequential");

    std::fs::remove_dir_all(&dir).ok();
}
