//! CLI command implementations.
//!
//! Commands operate on `.l6tr` trace files (the `lumen6-trace` binary
//! format) so the pipeline can be composed:
//!
//! ```text
//! lumen6 generate cdn --out cdn.l6tr --days 60
//! lumen6 info --trace cdn.l6tr
//! lumen6 detect --trace cdn.l6tr --agg 64 --min-dsts 100 --prefilter
//! lumen6 mawi-detect --trace mawi.l6tr --min-dsts 100
//! lumen6 adaptive --trace cdn.l6tr
//! lumen6 fingerprint --trace cdn.l6tr --threshold 0.1
//! ```

use crate::{Args, CliError};
use lumen6_detect::adaptive::{AdaptiveConfig, AdaptiveIds};
use lumen6_detect::{
    AggLevel, ArtifactFilter, DetectorBuilder, MawiConfig as FhConfig, MawiDetector,
    ScanDetectorConfig, Session, SessionOutcome,
};
use lumen6_report::{duration_human, pkt_count, Table};
use lumen6_scanners::{FleetConfig, World};
use lumen6_serve::{Daemon, RunConfig, ServeConfig, ServeError};
use lumen6_trace::{PacketRecord, TraceReader, TraceWriter};
use std::fs::File;
use std::io::{BufReader, BufWriter, Write as _};

/// Top-level usage text.
pub const USAGE: &str = "\
lumen6 — IPv6 scan detection toolkit

USAGE:
  lumen6 generate <cdn|mawi> --out FILE [--days N] [--seed N] [--small]
                [--intensity F]
  lumen6 generate custom --fleet ACTORS.json --out FILE [--seed N]
  lumen6 info --trace FILE
  lumen6 detect --trace FILE [--agg 128|64|48|32] [--min-dsts N]
                [--timeout-secs N] [--prefilter] [--top N] [--json]
                [--threads N] [--sequential] [--metrics-out FILE.json]
                [--checkpoint FILE] [--checkpoint-every N] [--stop-after N]
                [--watermark-secs N] [--strict] [--batch N]
                [--sketch-precision P] [--flush-idle-secs N]
  lumen6 detect --fused [--days N] [--seed N] [--small] [--intensity F]
                [--gen-threads N]
                (synthesize the CDN fleet stream in-process instead of
                 reading --trace; same detection flags apply. --gen-threads
                 spreads generation over N threads — output is byte-identical
                 for any N; 0 = one per hardware thread)
  lumen6 detect --tail FILE   (follow a growing trace until FILE.eof appears)
  lumen6 detect --config RUN.toml [flags override the file's keys]
  lumen6 serve  --config MANIFEST.toml [--spool DIR] [--workers N]
                [--stop-file FILE]
                (multi-tenant daemon: one checkpointed session per
                 [tenants.<name>] table; touch the stop file — default
                 <spool>/shutdown — for a graceful drain-and-exit)
  lumen6 soak   --out DIR [--intensity F] [--days N] [--seed N] [--small]
                [--gen-threads N] [--min-dsts N] [--checkpoint-every N]
                [--kills N] [--kill-after-checkpoints N] [--sample-ms N]
                [--max-rss-mb N] [--json]
                (full-volume fused endurance run: a clean reference pass,
                 then a kill -9/resume chain with RSS and throughput
                 sampling into DIR/SOAK.json; fails unless the final
                 report and checkpoint are byte-identical to the
                 uninterrupted run)
  lumen6 mawi-detect --trace FILE [--agg N] [--min-dsts N] [--json]
  lumen6 adaptive --trace FILE [--min-dsts N]
  lumen6 fingerprint --trace FILE [--agg N] [--threshold F]
  lumen6 import --pcap FILE --out FILE       (pcap -> .l6tr)
  lumen6 export-pcap --trace FILE --out FILE (.l6tr -> pcap)
  lumen6 backscatter --trace FILE [--agg N] [--min-queriers N]
";

/// Runs a command line (without the program name); writes human output
/// to the given sink (stdout in the binary, a buffer in tests).
pub fn run<W: std::io::Write>(argv: Vec<String>, out: &mut W) -> Result<(), CliError> {
    let args = Args::parse(
        argv,
        &[
            "out",
            "days",
            "seed",
            "agg",
            "min-dsts",
            "timeout-secs",
            "trace",
            "top",
            "threshold",
            "pcap",
            "min-queriers",
            "fleet",
            "threads",
            "metrics-out",
            "checkpoint",
            "checkpoint-every",
            "stop-after",
            "watermark-secs",
            "batch",
            "intensity",
            "sketch-precision",
            "flush-idle-secs",
            "config",
            "tail",
            "spool",
            "workers",
            "stop-file",
            "gen-threads",
            "kills",
            "kill-after-checkpoints",
            "sample-ms",
            "max-rss-mb",
        ],
    )?;
    let cmd = args
        .positional()
        .first()
        .ok_or_else(|| CliError::Usage(USAGE.to_string()))?
        .clone();
    match cmd.as_str() {
        "generate" => generate(&args, out),
        "info" => info(&args, out),
        "detect" => detect(&args, out),
        "serve" => serve(&args, out),
        "soak" => crate::soak::soak(&args, out),
        "mawi-detect" => mawi_detect(&args, out),
        "adaptive" => adaptive(&args, out),
        "fingerprint" => fingerprint_cmd(&args, out),
        "import" => import_pcap(&args, out),
        "export-pcap" => export_pcap(&args, out),
        "backscatter" => backscatter(&args, out),
        other => Err(CliError::Usage(format!(
            "unknown command {other:?}\n\n{USAGE}"
        ))),
    }
}

fn load_trace(args: &Args) -> Result<Vec<PacketRecord>, CliError> {
    let path = args
        .get("trace")
        .ok_or_else(|| CliError::Usage("--trace FILE is required".into()))?;
    load_trace_file(path)
}

fn load_trace_file(path: &str) -> Result<Vec<PacketRecord>, CliError> {
    let reader = TraceReader::from_reader(BufReader::new(File::open(path)?))?;
    let records: Result<Vec<_>, _> = reader.collect();
    Ok(records?)
}

fn agg_of(args: &Args) -> Result<AggLevel, CliError> {
    Ok(AggLevel::new(args.get_parsed::<u8>("agg", 64)?))
}

/// Builds the fleet configuration shared by `generate cdn` and
/// `detect --fused`: `--small`, `--seed`, `--days`, and `--intensity`
/// (a multiplier on every actor's per-session packet budget; 1.0 is the
/// calibrated default, 100.0 approaches the paper's packet volumes).
fn fleet_config(args: &Args, seed: u64, days: Option<u64>) -> Result<FleetConfig, CliError> {
    let mut cfg = if args.has("small") {
        FleetConfig::small()
    } else {
        FleetConfig::default()
    };
    cfg.seed = seed;
    cfg.end_day = days.unwrap_or(cfg.end_day);
    cfg.intensity = args.get_parsed::<f64>("intensity", cfg.intensity)?;
    if !cfg.intensity.is_finite() || cfg.intensity <= 0.0 {
        return Err(CliError::Usage(format!(
            "--intensity must be a positive finite number, got {}",
            cfg.intensity
        )));
    }
    Ok(cfg)
}

/// `generate <cdn|mawi>`: build a synthetic vantage trace file.
fn generate<W: std::io::Write>(args: &Args, out: &mut W) -> Result<(), CliError> {
    let kind = args
        .positional()
        .get(1)
        .map(String::as_str)
        .ok_or_else(|| CliError::Usage("generate needs <cdn|mawi>".into()))?;
    let seed = args.get_parsed::<u64>("seed", 42)?;
    let days = args.get_parsed::<u64>("days", 439)?;
    let path = args
        .get("out")
        .ok_or_else(|| CliError::Usage("--out FILE is required".into()))?;

    let records = match kind {
        "cdn" => {
            let cfg = fleet_config(args, seed, Some(days))?;
            World::build(cfg).cdn_trace()
        }
        "mawi" => {
            let mut cfg = if args.has("small") {
                lumen6_mawi::MawiConfig::small()
            } else {
                lumen6_mawi::MawiConfig::default()
            };
            cfg.seed = seed;
            cfg.end_day = days;
            lumen6_mawi::MawiWorld::build(cfg, None).trace()
        }
        "custom" => {
            // A user-defined actor list (JSON array of ScannerActor).
            let fleet_path = args
                .get("fleet")
                .ok_or_else(|| CliError::Usage("generate custom needs --fleet FILE".into()))?;
            let json = std::fs::read_to_string(fleet_path)?;
            let actors: Vec<lumen6_scanners::ScannerActor> = serde_json::from_str(&json)
                .map_err(|e| CliError::Usage(format!("invalid fleet JSON: {e}")))?;
            if actors.is_empty() {
                return Err(CliError::Usage("fleet file defines no actors".into()));
            }
            let streams: Vec<_> = actors.iter().map(|a| a.generate(seed)).collect();
            lumen6_trace::merge_sorted(streams)
        }
        other => {
            return Err(CliError::Usage(format!(
                "unknown vantage {other:?}; expected cdn or mawi"
            )))
        }
    };

    // Write-temp-then-rename so a concurrent `--tail` reader of the same
    // path never sees a partial trace.
    let tmp = format!("{path}.tmp");
    let mut writer = TraceWriter::new(BufWriter::new(File::create(&tmp)?))?;
    for r in &records {
        writer.append(r)?;
    }
    writer.finish()?.flush()?;
    std::fs::rename(&tmp, path)?;
    writeln!(out, "wrote {} records to {path}", records.len())?;
    Ok(())
}

/// `info`: summary statistics of a trace file.
fn info<W: std::io::Write>(args: &Args, out: &mut W) -> Result<(), CliError> {
    let records = load_trace(args)?;
    let mut srcs = std::collections::HashSet::new();
    let mut dsts = std::collections::HashSet::new();
    let mut by_proto: std::collections::BTreeMap<&'static str, u64> = Default::default();
    for r in &records {
        srcs.insert(r.src);
        dsts.insert(r.dst);
        *by_proto.entry(r.proto.label()).or_default() += 1;
    }
    writeln!(out, "records:        {}", records.len())?;
    if let (Some(first), Some(last)) = (records.first(), records.last()) {
        writeln!(
            out,
            "time range:     {} .. {} ({} days)",
            lumen6_trace::SimTime(first.ts_ms),
            lumen6_trace::SimTime(last.ts_ms),
            (last.ts_ms - first.ts_ms) / lumen6_trace::DAY_MS + 1
        )?;
    }
    writeln!(out, "distinct /128 sources: {}", srcs.len())?;
    writeln!(out, "distinct destinations: {}", dsts.len())?;
    for (proto, n) in by_proto {
        writeln!(out, "{proto:<8} packets: {}", pkt_count(n))?;
    }
    Ok(())
}

/// Resolves the full [`RunConfig`] of a `detect` invocation: the TOML file
/// named by `--config` (if any) supplies the base, and every flag present
/// on the command line overrides the corresponding key. The three source
/// selectors (`--trace`/`--tail`/`--fused`) override as a group, so a flag
/// cleanly retargets a config file that already names a source.
fn run_config(args: &Args) -> Result<RunConfig, CliError> {
    let mut run = match args.get("config") {
        Some(path) => {
            let text = std::fs::read_to_string(path)?;
            RunConfig::from_toml_str(&text)
                .map_err(|e| CliError::Usage(format!("--config {path}: {e}")))?
        }
        None => RunConfig::default(),
    };
    let trace = args.get("trace");
    let tail = args.get("tail");
    let fused = args.has("fused");
    if usize::from(trace.is_some()) + usize::from(tail.is_some()) + usize::from(fused) > 1 {
        return Err(CliError::Usage(
            "--trace, --tail, and --fused are mutually exclusive".into(),
        ));
    }
    if trace.is_some() || tail.is_some() || fused {
        run.trace = trace.map(str::to_string);
        run.tail = tail.map(str::to_string);
        run.fused = fused;
    }
    run.agg = args.get_parsed("agg", run.agg)?;
    run.min_dsts = args.get_parsed("min-dsts", run.min_dsts)?;
    run.timeout_secs = args.get_parsed("timeout-secs", run.timeout_secs)?;
    if args.get("sketch-precision").is_some() {
        run.sketch_precision = Some(args.get_parsed("sketch-precision", 0)?);
    }
    run.threads = args.get_parsed("threads", run.threads)?;
    run.sequential = run.sequential || args.has("sequential");
    run.watermark_secs = args.get_parsed("watermark-secs", run.watermark_secs)?;
    run.batch = args.get_parsed("batch", run.batch)?;
    run.strict = run.strict || args.has("strict");
    if let Some(path) = args.get("checkpoint") {
        run.checkpoint = Some(path.to_string());
    }
    run.checkpoint_every = args.get_parsed("checkpoint-every", run.checkpoint_every)?;
    if args.get("stop-after").is_some() {
        run.stop_after = Some(args.get_parsed("stop-after", 0)?);
    }
    run.flush_idle_secs = args.get_parsed("flush-idle-secs", run.flush_idle_secs)?;
    if args.get("days").is_some() {
        run.days = Some(args.get_parsed("days", 0)?);
    }
    run.seed = args.get_parsed("seed", run.seed)?;
    run.small = run.small || args.has("small");
    run.intensity = args.get_parsed("intensity", run.intensity)?;
    run.gen_threads = args.get_parsed("gen-threads", run.gen_threads)?;
    if run.checkpoint.is_none()
        && (args.get("checkpoint-every").is_some() || args.get("stop-after").is_some())
    {
        return Err(CliError::Usage(
            "--checkpoint-every/--stop-after need --checkpoint FILE".into(),
        ));
    }
    Ok(run)
}

/// `detect`: the paper's large-scale scan detection over a trace file —
/// or, with `--fused`, over the fleet generators directly (no trace file
/// at any point; the paper-scale path).
///
/// All backends dispatch through one [`DetectorBuilder`] code path: the
/// sharded parallel pipeline by default (`--threads N` to pin the shard
/// count), the single-threaded reference detector with `--sequential`.
/// Without `--prefilter` the input is streamed through a fault-tolerant
/// [`Session`] in bounded memory — checkpoint/resume with
/// `--checkpoint FILE` (fused runs resume by deterministic regeneration),
/// out-of-order tolerance with `--watermark-secs N`, and
/// quarantine-and-skip of corrupt records unless `--strict`.
/// Prefiltering needs the whole trace resident and is incompatible with
/// the session flags and with `--fused`.
fn detect<W: std::io::Write>(args: &Args, out: &mut W) -> Result<(), CliError> {
    // Delta against the process-global registry so the emitted snapshot
    // covers exactly this command run (tests share one process).
    let metrics_baseline = lumen6_obs::MetricsRegistry::global().snapshot();
    // `--sketch-precision P` (or `sketch_precision` in the config file)
    // switches distinct-destination counting from exact sets to
    // spill-to-HyperLogLog at precision P (memory per spilled source: 2^P
    // registers; error ≈ 1.04/sqrt(2^P)). Out-of-range values are clamped
    // to the supported 4..=16 at construction.
    let run = run_config(args)?;
    let config = run.detector_config();
    let agg = config.agg;
    let builder = DetectorBuilder::new(config);
    let backend = run.backend();
    let session = run.session_config();

    let mut session_stats = None;
    let report = if args.has("prefilter") {
        if session.checkpoint.is_some() || session.watermark_ms > 0 {
            return Err(CliError::Usage(
                "--checkpoint/--watermark-secs are incompatible with --prefilter \
                 (prefiltering needs the whole trace resident)"
                    .into(),
            ));
        }
        if run.fused || run.tail.is_some() {
            return Err(CliError::Usage(
                "--fused/--tail are incompatible with --prefilter (prefiltering \
                 needs the whole trace resident; those sources never materialize it)"
                    .into(),
            ));
        }
        let Some(path) = &run.trace else {
            return Err(CliError::Usage("--trace FILE is required".into()));
        };
        let records = load_trace_file(path)?;
        let (kept, filter_report) = ArtifactFilter::default().filter(&records);
        writeln!(
            out,
            "prefilter: removed {} of {} packets ({} sources)",
            filter_report.removed_packets,
            filter_report.input_packets,
            filter_report.removed_sources
        )?;
        // Feed the resident records through the columnar batch path: same
        // results as per-record observe, one run-state lookup per
        // (source, batch).
        let mut det = builder.build(backend);
        let mut batch = lumen6_trace::RecordBatch::with_capacity(session.batch.max(1));
        for part in kept.chunks(session.batch.max(1)) {
            batch.clear();
            batch.extend(part.iter().copied());
            det.observe_batch(&batch);
        }
        det.finish().remove(&agg).ok_or_else(|| {
            CliError::Internal(format!("level /{} missing from report", agg.len()))
        })?
    } else {
        // Stream through the fault-tolerant session so peak memory does not
        // scale with trace size: off disk with --trace, following a growing
        // file with --tail, or synthesized in-process from the fleet
        // generators with --fused (the generator→detector pipeline never
        // touches a trace file).
        let announce = session.checkpoint.is_some();
        run.validate().map_err(CliError::Usage)?;
        let mut src = run.make_source()?;
        let outcome = Session::new(builder, backend, session).run_source(src.as_mut())?;
        match outcome {
            SessionOutcome::Stopped {
                checkpoints_written,
                records_done,
            } => {
                return Err(CliError::Stopped {
                    checkpoints_written,
                    records_done,
                })
            }
            SessionOutcome::Finished(mut rep) => {
                // Surface session-layer accounting whenever checkpointing is
                // on or anything was dropped/skipped; quiet for the plain
                // sorted-trace fast path. Restored counters make a resumed
                // run print the same line as an uninterrupted one.
                if announce || rep.late_dropped > 0 || rep.decode_skipped > 0 {
                    session_stats = Some((
                        rep.records,
                        rep.late_dropped,
                        rep.decode_skipped,
                        rep.checkpoints_written,
                    ));
                }
                rep.reports.remove(&agg).ok_or_else(|| {
                    CliError::Internal(format!("level /{} missing from report", agg.len()))
                })?
            }
        }
    };
    if args.has("json") {
        let json = serde_json::to_string_pretty(&report.events)
            .map_err(|e| CliError::Internal(format!("serialize scan events: {e}")))?;
        writeln!(out, "{json}")?;
        // Metrics go to their own file, so they compose with --json.
        emit_metrics(args, &metrics_baseline, out, true)?;
        return Ok(());
    }
    emit_metrics(args, &metrics_baseline, out, false)?;
    if let Some((records, late, skipped, ckpts)) = session_stats {
        writeln!(
            out,
            "session: {records} records, {late} late-dropped, {skipped} skipped, \
             {ckpts} checkpoints"
        )?;
    }
    writeln!(
        out,
        "{} scans from {} sources, {} packets",
        report.scans(),
        report.sources(),
        pkt_count(report.packets())
    )?;
    let top = args.get_parsed::<usize>("top", 20)?;
    let mut t = Table::new(vec![
        "source", "start", "duration", "packets", "dsts", "ports",
    ]);
    for c in 3..=5 {
        t.align_right(c);
    }
    let mut events: Vec<_> = report.events.iter().collect();
    events.sort_by_key(|e| std::cmp::Reverse(e.packets));
    for e in events.into_iter().take(top) {
        t.row(vec![
            e.source.to_string(),
            lumen6_trace::SimTime(e.start_ms).to_string(),
            duration_human(e.duration_ms()),
            e.packets.to_string(),
            e.distinct_dsts.to_string(),
            e.num_ports().to_string(),
        ]);
    }
    writeln!(out, "{}", t.render())?;
    Ok(())
}

/// Maps daemon errors onto the CLI error taxonomy (exit code 2 for all of
/// them; tenant-level failures are reported via [`CliError::Serve`]).
fn serve_err(e: ServeError) -> CliError {
    match e {
        ServeError::Io(e) => CliError::Io(e),
        ServeError::Codec(e) => CliError::Codec(e),
        ServeError::Session(e) => e.into(),
        ServeError::Config(m) => CliError::Usage(m),
    }
}

/// `serve`: the multi-tenant detection daemon. Loads a TOML manifest with
/// one `[tenants.<name>]` table per tenant (each table is a [`RunConfig`],
/// the same schema `detect --config` reads), lays out the spool, and runs
/// every tenant concurrently with checkpoint-based crash recovery until
/// all streams finish or the stop file appears. Exits nonzero if any
/// tenant ends in the `failed` state.
fn serve<W: std::io::Write>(args: &Args, out: &mut W) -> Result<(), CliError> {
    let path = args
        .get("config")
        .ok_or_else(|| CliError::Usage("serve needs --config MANIFEST.toml".into()))?;
    let text = std::fs::read_to_string(path)?;
    let mut cfg = ServeConfig::from_toml_str(&text)
        .map_err(|e| CliError::Usage(format!("--config {path}: {e}")))?;
    if let Some(spool) = args.get("spool") {
        cfg.spool = spool.to_string();
    }
    cfg.workers = args.get_parsed("workers", cfg.workers)?;
    if let Some(stop) = args.get("stop-file") {
        cfg.stop_file = Some(stop.to_string());
    }
    let daemon = Daemon::new(cfg).map_err(serve_err)?;
    writeln!(
        out,
        "serve: {} tenant(s), stop file {}",
        daemon.tenant_count(),
        daemon.stop_file().display()
    )?;
    out.flush()?;
    let summary = daemon.run().map_err(serve_err)?;
    let mut failed = 0usize;
    for t in &summary.tenants {
        let resumed = if t.resumed { ", resumed" } else { "" };
        let error = t
            .error
            .as_ref()
            .map(|e| format!(" — {e}"))
            .unwrap_or_default();
        writeln!(
            out,
            "tenant {}: {} ({} records, {} slices{resumed}){error}",
            t.name, t.state, t.records, t.slices
        )?;
        if t.state == "failed" {
            failed += 1;
        }
    }
    writeln!(
        out,
        "serve: {}",
        if summary.stopped {
            "stopped by stop file; tenants checkpointed for resume"
        } else {
            "all tenants done"
        }
    )?;
    if failed > 0 {
        return Err(CliError::Serve(format!("{failed} tenant(s) failed")));
    }
    Ok(())
}

/// Writes the run's metric delta to `--metrics-out FILE.json` (if given)
/// and, unless the main output is JSON, prints a compact summary table.
fn emit_metrics<W: std::io::Write>(
    args: &Args,
    baseline: &lumen6_obs::MetricsSnapshot,
    out: &mut W,
    quiet: bool,
) -> Result<(), CliError> {
    let Some(path) = args.get("metrics-out") else {
        return Ok(());
    };
    let delta = lumen6_obs::MetricsRegistry::global()
        .snapshot()
        .delta(baseline);
    let json = serde_json::to_string_pretty(&delta)
        .map_err(|e| CliError::Internal(format!("serialize metrics snapshot: {e}")))?;
    // Atomic publication: tools polling the metrics file (CI's
    // check_metrics, dashboards) must never observe a torn write.
    let tmp = format!("{path}.tmp");
    std::fs::write(&tmp, json)?;
    std::fs::rename(&tmp, path)?;
    if !quiet {
        writeln!(out, "metrics -> {path}")?;
        writeln!(out, "{}", delta.summary_table())?;
    }
    Ok(())
}

/// `mawi-detect`: per-day Fukuda–Heidemann-extended detection.
fn mawi_detect<W: std::io::Write>(args: &Args, out: &mut W) -> Result<(), CliError> {
    let records = load_trace(args)?;
    let det = MawiDetector::new(FhConfig {
        agg: agg_of(args)?,
        min_dsts: args.get_parsed("min-dsts", 100)?,
        ..Default::default()
    });
    let start = records
        .first()
        .map(|r| r.ts_ms / lumen6_trace::DAY_MS)
        .unwrap_or(0);
    let end = records
        .last()
        .map(|r| r.ts_ms / lumen6_trace::DAY_MS + 1)
        .unwrap_or(0);
    let mut all = Vec::new();
    for (day, slice) in lumen6_mawi::split_days(&records, start, end) {
        for scan in det.detect(slice) {
            all.push((day, scan));
        }
    }
    if args.has("json") {
        let json = serde_json::to_string_pretty(&all)
            .map_err(|e| CliError::Internal(format!("serialize scans: {e}")))?;
        writeln!(out, "{json}")?;
        return Ok(());
    }
    writeln!(out, "{} per-day scans detected", all.len())?;
    let mut t = Table::new(vec![
        "day", "source", "services", "packets", "dsts", "icmpv6",
    ]);
    t.align_right(0).align_right(3).align_right(4);
    for (day, s) in all.iter().take(40) {
        t.row(vec![
            day.to_string(),
            s.source.to_string(),
            s.services.len().to_string(),
            s.packets.to_string(),
            s.distinct_dsts.to_string(),
            s.is_icmpv6().to_string(),
        ]);
    }
    writeln!(out, "{}", t.render())?;
    Ok(())
}

/// `adaptive`: adaptive-aggregation alerting with collateral estimates.
fn adaptive<W: std::io::Write>(args: &Args, out: &mut W) -> Result<(), CliError> {
    let records = load_trace(args)?;
    let ids = AdaptiveIds::new(AdaptiveConfig {
        min_dsts: args.get_parsed("min-dsts", 100)?,
        ..Default::default()
    });
    let alerts = ids.analyze(&records);
    writeln!(out, "{} alerts", alerts.len())?;
    let mut t = Table::new(vec![
        "prefix",
        "level",
        "packets",
        "dsts",
        "srcs",
        "collateral",
        "subsumed",
    ]);
    for c in 2..=6 {
        t.align_right(c);
    }
    for a in alerts.iter().take(40) {
        t.row(vec![
            a.prefix.to_string(),
            format!("/{}", a.prefix.len()),
            a.packets.to_string(),
            a.distinct_dsts.to_string(),
            a.contributing_srcs.to_string(),
            a.collateral_srcs.to_string(),
            a.subsumed.len().to_string(),
        ]);
    }
    writeln!(out, "{}", t.render())?;
    Ok(())
}

/// `fingerprint`: detect scans, then cluster them by traffic behavior.
fn fingerprint_cmd<W: std::io::Write>(args: &Args, out: &mut W) -> Result<(), CliError> {
    let records = load_trace(args)?;
    let config = ScanDetectorConfig {
        agg: agg_of(args)?,
        min_dsts: args.get_parsed("min-dsts", 100)?,
        keep_dsts: true,
        ..Default::default()
    };
    let report = lumen6_detect::detector::detect(&records, config);
    let threshold = args.get_parsed::<f64>("threshold", 0.10)?;
    let clusters = lumen6_detect::fingerprint::cluster(&report.events, threshold);
    writeln!(
        out,
        "{} scan events -> {} behavior clusters (threshold {threshold})",
        report.events.len(),
        clusters.len()
    )?;
    let mut t = Table::new(vec![
        "cluster",
        "events",
        "sources",
        "~packets",
        "~ports",
        "top-port frac",
        "example source",
    ]);
    for c in 0..=4 {
        t.align_right(c);
    }
    for (i, c) in clusters.iter().enumerate().take(25) {
        let sources: std::collections::HashSet<_> =
            c.members.iter().map(|&m| report.events[m].source).collect();
        t.row(vec![
            i.to_string(),
            c.members.len().to_string(),
            sources.len().to_string(),
            format!("{:.0}", c.centroid.log_packets.exp2()),
            format!("{:.0}", c.centroid.log_ports.exp2() - 1.0),
            format!("{:.2}", c.centroid.top_port_frac),
            report.events[c.members[0]].source.to_string(),
        ]);
    }
    writeln!(out, "{}", t.render())?;
    Ok(())
}

/// `import`: convert a pcap capture to the native trace format.
fn import_pcap<W: std::io::Write>(args: &Args, out: &mut W) -> Result<(), CliError> {
    let pcap_path = args
        .get("pcap")
        .ok_or_else(|| CliError::Usage("--pcap FILE is required".into()))?;
    let out_path = args
        .get("out")
        .ok_or_else(|| CliError::Usage("--out FILE is required".into()))?;
    let imported = lumen6_trace::pcap::read_pcap(BufReader::new(File::open(pcap_path)?))
        .map_err(|e| CliError::Usage(format!("pcap import failed: {e}")))?;
    let mut records = imported.records;
    // Captures are usually time-sorted, but the codec requires it.
    lumen6_trace::sort_by_time(&mut records);
    let tmp = format!("{out_path}.tmp");
    let mut writer = TraceWriter::new(BufWriter::new(File::create(&tmp)?))?;
    for r in &records {
        writer.append(r)?;
    }
    writer.finish()?.flush()?;
    std::fs::rename(&tmp, out_path)?;
    writeln!(
        out,
        "imported {} IPv6 records ({} packets skipped) -> {out_path}",
        records.len(),
        imported.skipped
    )?;
    Ok(())
}

/// `export-pcap`: write a trace as real IPv6 packets for Wireshark/tcpdump.
fn export_pcap<W: std::io::Write>(args: &Args, out: &mut W) -> Result<(), CliError> {
    let records = load_trace(args)?;
    let out_path = args
        .get("out")
        .ok_or_else(|| CliError::Usage("--out FILE is required".into()))?;
    let tmp = format!("{out_path}.tmp");
    let n = lumen6_trace::pcap::write_pcap(&records, BufWriter::new(File::create(&tmp)?))
        .map_err(|e| CliError::Usage(format!("pcap export failed: {e}")))?;
    std::fs::rename(&tmp, out_path)?;
    writeln!(out, "wrote {n} packets to {out_path}")?;
    Ok(())
}

/// `backscatter`: simulate the reverse-zone authority's PTR stream for the
/// trace and run querier-diversity detection on it.
fn backscatter<W: std::io::Write>(args: &Args, out: &mut W) -> Result<(), CliError> {
    use lumen6_backscatter::{generate_backscatter, BackscatterConfig, BackscatterDetector};
    let records = load_trace(args)?;
    let queries = generate_backscatter(&records, &BackscatterConfig::default(), 42);
    let det = BackscatterDetector {
        agg_len: args.get_parsed::<u8>("agg", 64)?,
        min_queriers: args.get_parsed("min-queriers", 20)?,
    };
    let flagged = det.detect(&queries);
    writeln!(
        out,
        "{} PTR queries observed; {} sources flagged (≥{} distinct resolvers)",
        queries.len(),
        flagged.len(),
        det.min_queriers
    )?;
    let mut t = Table::new(vec!["source", "queriers", "queries", "first", "last"]);
    t.align_right(1).align_right(2);
    for s in flagged.iter().take(25) {
        t.row(vec![
            s.source.to_string(),
            s.queriers.to_string(),
            s.queries.to_string(),
            lumen6_trace::SimTime(s.first_ms).to_string(),
            lumen6_trace::SimTime(s.last_ms).to_string(),
        ]);
    }
    writeln!(out, "{}", t.render())?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_cli(line: &[&str]) -> (String, Result<(), CliError>) {
        let mut buf = Vec::new();
        let res = run(
            line.iter().map(std::string::ToString::to_string).collect(),
            &mut buf,
        );
        (String::from_utf8(buf).unwrap(), res)
    }

    #[test]
    fn no_command_is_usage() {
        let (_, res) = run_cli(&[]);
        assert!(matches!(res, Err(CliError::Usage(_))));
    }

    #[test]
    fn unknown_command_is_usage() {
        let (_, res) = run_cli(&["frobnicate"]);
        assert!(matches!(res, Err(CliError::Usage(_))));
    }

    #[test]
    fn detect_requires_trace() {
        let (_, res) = run_cli(&["detect"]);
        assert!(matches!(res, Err(CliError::Usage(_))));
    }

    #[test]
    fn detect_config_file_matches_flags_and_flags_override() {
        let dir = std::env::temp_dir().join(format!("lumen6-cli-config-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("t.l6tr");
        let p = trace.to_str().unwrap();
        let (_, res) = run_cli(&[
            "generate", "cdn", "--out", p, "--days", "3", "--seed", "3", "--small",
        ]);
        res.unwrap();

        let (flags_out, res) = run_cli(&[
            "detect",
            "--trace",
            p,
            "--min-dsts",
            "5",
            "--sequential",
            "--json",
        ]);
        res.unwrap();

        // The same run expressed as a config file.
        let cfg = dir.join("run.toml");
        std::fs::write(
            &cfg,
            format!("trace = \"{p}\"\nmin_dsts = 5\nsequential = true\n"),
        )
        .unwrap();
        let c = cfg.to_str().unwrap();
        let (cfg_out, res) = run_cli(&["detect", "--config", c, "--json"]);
        res.unwrap();
        assert_eq!(cfg_out, flags_out, "config-file run differs from flag run");

        // A flag overrides the file's key: min_dsts back down to 5 from an
        // impossible threshold.
        let strict_cfg = dir.join("strict.toml");
        std::fs::write(
            &strict_cfg,
            format!("trace = \"{p}\"\nmin_dsts = 1000000000\nsequential = true\n"),
        )
        .unwrap();
        let sc = strict_cfg.to_str().unwrap();
        let (over_out, res) = run_cli(&["detect", "--config", sc, "--min-dsts", "5", "--json"]);
        res.unwrap();
        assert_eq!(over_out, flags_out, "flag did not override config key");

        // Unknown keys are rejected with the offending name.
        let bad_cfg = dir.join("bad.toml");
        std::fs::write(&bad_cfg, "trace = \"x\"\nmin_dst = 5\n").unwrap();
        let (_, res) = run_cli(&["detect", "--config", bad_cfg.to_str().unwrap()]);
        let Err(CliError::Usage(msg)) = res else {
            panic!("expected usage error, got {res:?}");
        };
        assert!(msg.contains("min_dst"), "{msg}");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serve_requires_valid_manifest() {
        let (_, res) = run_cli(&["serve"]);
        assert!(matches!(res, Err(CliError::Usage(_))));

        let dir = std::env::temp_dir().join(format!("lumen6-cli-serve-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let manifest = dir.join("serve.toml");
        // A tenant with no ingest source fails manifest validation.
        std::fs::write(&manifest, "[tenants.empty]\nmin_dsts = 5\n").unwrap();
        let (_, res) = run_cli(&["serve", "--config", manifest.to_str().unwrap()]);
        let Err(CliError::Usage(msg)) = res else {
            panic!("expected usage error, got {res:?}");
        };
        assert!(msg.contains("no ingest source"), "{msg}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn generate_then_detect_roundtrip() {
        let dir = std::env::temp_dir().join(format!("lumen6-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.l6tr");
        let p = path.to_str().unwrap();

        let (out, res) = run_cli(&[
            "generate", "cdn", "--out", p, "--days", "5", "--seed", "3", "--small",
        ]);
        res.unwrap();
        assert!(out.contains("wrote"));

        let (out, res) = run_cli(&["info", "--trace", p]);
        res.unwrap();
        assert!(out.contains("records:"));
        assert!(out.contains("TCP"));

        let (out, res) = run_cli(&["detect", "--trace", p, "--prefilter", "--top", "5"]);
        res.unwrap();
        assert!(out.contains("scans from"), "{out}");

        let (out, res) = run_cli(&["adaptive", "--trace", p]);
        res.unwrap();
        assert!(out.contains("alerts"), "{out}");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sharded_detect_matches_sequential() {
        let dir = std::env::temp_dir().join(format!("lumen6-cli-shard-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.l6tr");
        let p = path.to_str().unwrap();
        run_cli(&[
            "generate", "cdn", "--out", p, "--days", "6", "--seed", "9", "--small",
        ])
        .1
        .unwrap();

        let (seq, res) = run_cli(&["detect", "--trace", p, "--min-dsts", "50", "--sequential"]);
        res.unwrap();
        for threads in ["1", "2", "4"] {
            let (par, res) = run_cli(&[
                "detect",
                "--trace",
                p,
                "--min-dsts",
                "50",
                "--threads",
                threads,
            ]);
            res.unwrap();
            assert_eq!(
                par, seq,
                "--threads {threads} output differs from --sequential"
            );
        }
        // Default (auto thread count) also matches.
        let (auto, res) = run_cli(&["detect", "--trace", p, "--min-dsts", "50"]);
        res.unwrap();
        assert_eq!(auto, seq);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn batch_size_does_not_change_output() {
        let dir = std::env::temp_dir().join(format!("lumen6-cli-batch-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.l6tr");
        let p = path.to_str().unwrap();
        run_cli(&[
            "generate", "cdn", "--out", p, "--days", "6", "--seed", "11", "--small",
        ])
        .1
        .unwrap();

        let (reference, res) =
            run_cli(&["detect", "--trace", p, "--min-dsts", "50", "--sequential"]);
        res.unwrap();
        for batch in ["1", "17", "100000"] {
            let (out, res) = run_cli(&[
                "detect",
                "--trace",
                p,
                "--min-dsts",
                "50",
                "--sequential",
                "--batch",
                batch,
            ]);
            res.unwrap();
            assert_eq!(out, reference, "--batch {batch} output differs");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mawi_generate_and_detect() {
        let dir = std::env::temp_dir().join(format!("lumen6-cli-mawi-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.l6tr");
        let p = path.to_str().unwrap();

        let (_, res) = run_cli(&[
            "generate", "mawi", "--out", p, "--days", "4", "--seed", "3", "--small",
        ]);
        res.unwrap();
        let (out, res) = run_cli(&["mawi-detect", "--trace", p, "--min-dsts", "5"]);
        res.unwrap();
        assert!(out.contains("per-day scans"), "{out}");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn json_output_is_valid() {
        let dir = std::env::temp_dir().join(format!("lumen6-cli-json-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.l6tr");
        let p = path.to_str().unwrap();
        run_cli(&["generate", "cdn", "--out", p, "--days", "3", "--small"])
            .1
            .unwrap();
        let (out, res) = run_cli(&["detect", "--trace", p, "--json", "--min-dsts", "50"]);
        res.unwrap();
        let parsed: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert!(parsed.is_array());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fingerprint_command_clusters() {
        let dir = std::env::temp_dir().join(format!("lumen6-cli-fp-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.l6tr");
        let p = path.to_str().unwrap();
        run_cli(&["generate", "cdn", "--out", p, "--days", "7", "--small"])
            .1
            .unwrap();
        let (out, res) = run_cli(&["fingerprint", "--trace", p, "--min-dsts", "50"]);
        res.unwrap();
        assert!(out.contains("behavior clusters"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn pcap_export_import_roundtrip() {
        let dir = std::env::temp_dir().join(format!("lumen6-cli-pcap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let t = dir.join("t.l6tr");
        let p = dir.join("t.pcap");
        let t2 = dir.join("t2.l6tr");
        run_cli(&[
            "generate",
            "cdn",
            "--out",
            t.to_str().unwrap(),
            "--days",
            "3",
            "--small",
        ])
        .1
        .unwrap();
        let (o, res) = run_cli(&[
            "export-pcap",
            "--trace",
            t.to_str().unwrap(),
            "--out",
            p.to_str().unwrap(),
        ]);
        res.unwrap();
        assert!(o.contains("wrote"));
        let (o, res) = run_cli(&[
            "import",
            "--pcap",
            p.to_str().unwrap(),
            "--out",
            t2.to_str().unwrap(),
        ]);
        res.unwrap();
        assert!(o.contains("0 packets skipped"), "{o}");
        // Detection over the re-imported trace matches the original.
        let (a, _) = run_cli(&["detect", "--trace", t.to_str().unwrap(), "--min-dsts", "50"]);
        let (b, _) = run_cli(&[
            "detect",
            "--trace",
            t2.to_str().unwrap(),
            "--min-dsts",
            "50",
        ]);
        assert_eq!(
            a.lines().next().unwrap(),
            b.lines().next().unwrap(),
            "same scans/sources/packets summary"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn backscatter_command_flags_scanners() {
        let dir = std::env::temp_dir().join(format!("lumen6-cli-bs-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.l6tr");
        let p = path.to_str().unwrap();
        run_cli(&["generate", "cdn", "--out", p, "--days", "5", "--small"])
            .1
            .unwrap();
        let (out, res) = run_cli(&["backscatter", "--trace", p, "--min-queriers", "30"]);
        res.unwrap();
        assert!(out.contains("sources flagged"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn custom_fleet_from_json() {
        let dir = std::env::temp_dir().join(format!("lumen6-cli-fleet-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let fleet = dir.join("fleet.json");
        let out = dir.join("custom.l6tr");
        // One single-source hitlist scanner, defined entirely in JSON.
        let actors = vec![lumen6_scanners::ScannerActor {
            name: "json-scanner".into(),
            asn: 65_001,
            sources: lumen6_scanners::SourceSampler::Single(0x2001_0db8 << 96 | 1),
            targets: lumen6_scanners::TargetSampler::Hitlist(
                (1..=300u128).map(|i| i << 8).collect(),
            ),
            ports: lumen6_scanners::PortSampler::Single(lumen6_trace::Transport::Tcp, 22),
            schedule: lumen6_scanners::Schedule::continuous(0, 3, 400),
            probe_len: 60,
        }];
        std::fs::write(&fleet, serde_json::to_string_pretty(&actors).unwrap()).unwrap();

        let (o, res) = run_cli(&[
            "generate",
            "custom",
            "--fleet",
            fleet.to_str().unwrap(),
            "--out",
            out.to_str().unwrap(),
        ]);
        res.unwrap();
        assert!(o.contains("wrote 1200 records"), "{o}");
        let (o, res) = run_cli(&["detect", "--trace", out.to_str().unwrap(), "--agg", "128"]);
        res.unwrap();
        assert!(o.contains("1 sources"), "{o}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn custom_fleet_bad_json_is_usage_error() {
        let dir = std::env::temp_dir().join(format!("lumen6-cli-badfleet-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let fleet = dir.join("fleet.json");
        std::fs::write(&fleet, "{not json").unwrap();
        let (_, res) = run_cli(&[
            "generate",
            "custom",
            "--fleet",
            fleet.to_str().unwrap(),
            "--out",
            dir.join("x.l6tr").to_str().unwrap(),
        ]);
        assert!(matches!(res, Err(CliError::Usage(_))));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let (_, res) = run_cli(&["info", "--trace", "/nonexistent/x.l6tr"]);
        assert!(matches!(res, Err(CliError::Io(_))));
    }

    #[test]
    fn fused_detect_matches_trace_file_detect() {
        let dir = std::env::temp_dir().join(format!("lumen6-cli-fused-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.l6tr");
        let p = path.to_str().unwrap();
        let params = ["--days", "6", "--seed", "13", "--small"];
        let mut gen = vec!["generate", "cdn", "--out", p];
        gen.extend(params);
        run_cli(&gen).1.unwrap();

        let (via_file, res) = run_cli(&["detect", "--trace", p, "--min-dsts", "50"]);
        res.unwrap();
        let mut fused = vec!["detect", "--fused", "--min-dsts", "50"];
        fused.extend(params);
        let (via_fused, res) = run_cli(&fused);
        res.unwrap();
        assert_eq!(via_fused, via_file, "fused output differs from trace file");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fused_detect_checkpoint_stop_and_resume() {
        let dir = std::env::temp_dir().join(format!("lumen6-cli-fusedck-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let ck = dir.join("state.l6ck");
        let base = |extra: &[&'static str]| {
            let mut v = vec![
                "detect",
                "--fused",
                "--small",
                "--days",
                "6",
                "--min-dsts",
                "50",
                "--checkpoint",
                ck.to_str().unwrap(),
                "--checkpoint-every",
                "2000",
            ];
            v.extend(extra);
            v
        };
        let (_, res) = run_cli(&base(&["--stop-after", "1"]));
        let Err(CliError::Stopped {
            checkpoints_written,
            records_done,
        }) = res
        else {
            panic!("expected Stopped, got {res:?}");
        };
        assert_eq!(checkpoints_written, 1);
        assert_eq!(records_done, 2000);
        // Resume to completion; output matches an uninterrupted run with
        // the same checkpoint cadence (fresh checkpoint path).
        let (resumed, res) = run_cli(&base(&[]));
        res.unwrap();
        std::fs::remove_file(&ck).unwrap();
        let (clean, res) = run_cli(&base(&[]));
        res.unwrap();
        assert_eq!(resumed, clean, "resumed fused run differs from clean run");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn generate_intensity_scales_volume() {
        let dir = std::env::temp_dir().join(format!("lumen6-cli-intens-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let count = |intensity: &str| {
            let path = dir.join(format!("t{intensity}.l6tr"));
            let (out, res) = run_cli(&[
                "generate",
                "cdn",
                "--out",
                path.to_str().unwrap(),
                "--days",
                "4",
                "--small",
                "--intensity",
                intensity,
            ]);
            res.unwrap();
            out.split_whitespace()
                .nth(1)
                .unwrap()
                .parse::<u64>()
                .unwrap()
        };
        let base = count("1.0");
        let double = count("2.0");
        let half = count("0.5");
        assert!(
            double > base && base > half,
            "intensity did not scale volume: 0.5x={half} 1x={base} 2x={double}"
        );
        let (_, res) = run_cli(&[
            "generate",
            "cdn",
            "--out",
            dir.join("bad.l6tr").to_str().unwrap(),
            "--intensity",
            "-3",
        ]);
        assert!(matches!(res, Err(CliError::Usage(_))));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sketch_precision_flag_bounds_memory_not_results_shape() {
        let dir = std::env::temp_dir().join(format!("lumen6-cli-sketch-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.l6tr");
        let p = path.to_str().unwrap();
        run_cli(&[
            "generate", "cdn", "--out", p, "--days", "6", "--seed", "5", "--small",
        ])
        .1
        .unwrap();
        // High precision: sketched counts are near-exact, so the summary
        // (scans/sources) matches the exact-set run on this workload.
        let (exact, res) = run_cli(&["detect", "--trace", p, "--min-dsts", "50"]);
        res.unwrap();
        let (sketched, res) = run_cli(&[
            "detect",
            "--trace",
            p,
            "--min-dsts",
            "50",
            "--sketch-precision",
            "16",
        ]);
        res.unwrap();
        assert_eq!(
            sketched.lines().next().unwrap(),
            exact.lines().next().unwrap(),
            "precision-16 sketch changed the scans/sources summary"
        );
        // Out-of-range precision is clamped, not an error.
        let (_, res) = run_cli(&[
            "detect",
            "--trace",
            p,
            "--min-dsts",
            "50",
            "--sketch-precision",
            "99",
        ]);
        res.unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}
