//! `lumen6` binary entry point; all logic lives in [`lumen6_cli::commands`].

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut stdout = std::io::stdout().lock();
    if let Err(e) = lumen6_cli::commands::run(argv, &mut stdout) {
        eprintln!("{e}");
        std::process::exit(2);
    }
}
