//! `lumen6` binary entry point; all logic lives in [`lumen6_cli::commands`].

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut stdout = std::io::stdout().lock();
    match lumen6_cli::commands::run(argv, &mut stdout) {
        Ok(()) => {}
        // Deliberate `--stop-after` checkpoint stop: exit 3 so resume tests
        // (and operators' supervisors) can tell it apart from a crash.
        Err(e @ lumen6_cli::CliError::Stopped { .. }) => {
            eprintln!("{e}");
            std::process::exit(3);
        }
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    }
}
