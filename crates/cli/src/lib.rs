//! Library backing the `lumen6` CLI: command parsing and execution, kept in
//! a library so integration tests can drive the tool without spawning
//! processes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod commands;
mod soak;

use std::fmt;

/// CLI-level errors.
#[derive(Debug)]
pub enum CliError {
    /// Bad usage / unknown flags; the string is the message for stderr.
    Usage(String),
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Trace decoding failure.
    Codec(lumen6_trace::CodecError),
    /// Detection-session failure (corrupt checkpoint, restore mismatch).
    Session(lumen6_detect::SessionError),
    /// The serve daemon ran to completion, but at least one tenant ended
    /// in the `failed` state; the daemon's exit must reflect that.
    Serve(String),
    /// A `soak` endurance run completed but broke an invariant (report or
    /// checkpoint divergence after kill/resume, RSS over the bound, fewer
    /// kills injected than requested), or a child run failed outright.
    Soak(String),
    /// A broken internal invariant (missing report level, report
    /// serialization failure) — a bug, surfaced as an error rather than
    /// a panic so a scripted pipeline sees a diagnosable exit.
    Internal(String),
    /// A `detect --checkpoint ... --stop-after N` run stopped deliberately
    /// after writing its checkpoint. Not a failure: the binary maps this to
    /// exit code 3 so resume tests can tell "stopped" from "crashed".
    Stopped {
        /// Checkpoints written over the session's whole life.
        checkpoints_written: u64,
        /// Records ingested over the session's whole life.
        records_done: u64,
    },
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "{m}"),
            CliError::Io(e) => write!(f, "I/O error: {e}"),
            CliError::Codec(e) => write!(f, "trace error: {e}"),
            CliError::Session(e) => write!(f, "{e}"),
            CliError::Serve(m) => write!(f, "serve: {m}"),
            CliError::Soak(m) => write!(f, "soak: {m}"),
            CliError::Internal(m) => write!(f, "internal error: {m}"),
            CliError::Stopped {
                checkpoints_written,
                records_done,
            } => write!(
                f,
                "stopped after {checkpoints_written} checkpoints ({records_done} records \
                 ingested); re-run with the same --checkpoint to resume"
            ),
        }
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

impl From<lumen6_trace::CodecError> for CliError {
    fn from(e: lumen6_trace::CodecError) -> Self {
        CliError::Codec(e)
    }
}

impl From<lumen6_detect::SessionError> for CliError {
    fn from(e: lumen6_detect::SessionError) -> Self {
        match e {
            lumen6_detect::SessionError::Io(e) => CliError::Io(e),
            lumen6_detect::SessionError::Codec(e) => CliError::Codec(e),
            other => CliError::Session(other),
        }
    }
}

/// Minimal flag parser: `--key value` pairs plus positional arguments.
#[derive(Debug, Default, Clone)]
pub struct Args {
    positional: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

impl Args {
    /// Parses a raw argument list. Flags that take values are listed in
    /// `valued`; everything else starting with `--` is a boolean flag.
    pub fn parse<I: IntoIterator<Item = String>>(
        raw: I,
        valued: &[&str],
    ) -> Result<Args, CliError> {
        let mut out = Args::default();
        let mut it = raw.into_iter();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                if valued.contains(&name) {
                    let v = it.next().ok_or_else(|| {
                        CliError::Usage(format!("flag --{name} requires a value"))
                    })?;
                    out.flags.push((name.to_string(), Some(v)));
                } else {
                    out.flags.push((name.to_string(), None));
                }
            } else {
                out.positional.push(a);
            }
        }
        Ok(out)
    }

    /// Positional arguments.
    pub fn positional(&self) -> &[String] {
        &self.positional
    }

    /// Whether a boolean flag is present.
    pub fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    /// A flag's raw value.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    /// A flag parsed to any `FromStr` type, with a default.
    pub fn get_parsed<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, CliError> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError::Usage(format!("invalid value for --{name}: {v:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Args {
        Args::parse(
            v.iter().map(std::string::ToString::to_string),
            &["seed", "days", "out"],
        )
        .unwrap()
    }

    #[test]
    fn parses_positional_and_flags() {
        let a = args(&[
            "generate", "cdn", "--seed", "7", "--small", "--out", "x.l6tr",
        ]);
        assert_eq!(a.positional(), ["generate", "cdn"]);
        assert!(a.has("small"));
        assert!(!a.has("large"));
        assert_eq!(a.get("seed"), Some("7"));
        assert_eq!(a.get_parsed::<u64>("seed", 0).unwrap(), 7);
        assert_eq!(a.get_parsed::<u64>("days", 439).unwrap(), 439);
    }

    #[test]
    fn missing_value_is_usage_error() {
        let e = Args::parse(vec!["--seed".to_string()], &["seed"]).unwrap_err();
        assert!(matches!(e, CliError::Usage(_)));
    }

    #[test]
    fn bad_parse_is_usage_error() {
        let a = args(&["--seed", "zebra"]);
        assert!(a.get_parsed::<u64>("seed", 0).is_err());
    }
}
