//! `lumen6 soak`: fused-pipeline endurance harness.
//!
//! Drives the full generator→detector pipeline (`detect --fused`) as child
//! processes of the installed binary and proves the crash-recovery story
//! end to end, at full paper intensity by default (`--intensity 1250`):
//!
//! 1. **Reference pass** — one uninterrupted fused run with periodic
//!    checkpointing, recording wall time and peak RSS.
//! 2. **Kill/resume chain** — the same run restarted from scratch, but each
//!    segment is killed with `SIGKILL` (a real `kill -9`, not a cooperative
//!    `--stop-after` stop) once the harness has observed `--kill-after-checkpoints`
//!    fresh checkpoint writes, then resumed from the surviving checkpoint.
//!    `--kills` segments die this way; the final segment runs to completion.
//! 3. **Invariant checks** — the chain's final stdout must be byte-identical
//!    to the reference pass (a resumed session restores its counters, so
//!    even the `session:` accounting line must match), the final on-disk
//!    checkpoints of both runs must be byte-identical (same deterministic
//!    cadence ⇒ same last snapshot), every requested kill must actually
//!    have been injected, and — when `--max-rss-mb` is set — peak RSS
//!    across every child must stay under the bound.
//!
//! While a child runs, the harness polls every `--sample-ms`: RSS from
//! `/proc/<pid>/status` (absent on non-Linux hosts; sampling then degrades
//! to zero and the RSS bound is not enforced) and the checkpoint file's
//! bytes, whose changes both count observed checkpoints and trigger the
//! kill. Everything measured lands in `DIR/SOAK.json`, published with the
//! same write-to-temp-then-rename idiom as the metrics snapshots so a
//! dashboard tailing the file never sees a torn write.

use crate::{Args, CliError};
use serde::Serialize;
use std::io::Read as _;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

/// One point on a child's RSS timeline.
#[derive(Serialize)]
struct RssSample {
    /// Milliseconds since the child was spawned.
    ms: u64,
    rss_kb: u64,
}

/// What the harness measured for one child process.
#[derive(Serialize)]
struct Segment {
    /// `"finished"` (exit 0) or `"killed"` (died to our SIGKILL).
    kind: String,
    wall_ms: u64,
    peak_rss_kb: u64,
    /// Fresh checkpoint writes observed while this child ran.
    checkpoints_observed: u64,
    /// Coarse (at most one per second) RSS timeline.
    rss_samples: Vec<RssSample>,
}

/// The pass/fail verdicts of phase 3.
#[derive(Serialize)]
struct Invariants {
    report_identical: bool,
    checkpoint_identical: bool,
    all_kills_injected: bool,
    rss_within_bound: bool,
}

/// The machine-readable artifact written to `DIR/SOAK.json`.
#[derive(Serialize)]
struct SoakReport {
    intensity: f64,
    checkpoint_every: u64,
    kills_requested: u64,
    kills_injected: u64,
    records: u64,
    chain_wall_ms: u64,
    throughput_rps: f64,
    peak_rss_kb: u64,
    max_rss_mb: u64,
    reference: Segment,
    segments: Vec<Segment>,
    invariants: Invariants,
    passed: bool,
}

/// One finished or killed child: its captured stdout plus measurements.
struct Outcome {
    stdout: Vec<u8>,
    /// `None` when the child died to a signal.
    exit_code: Option<i32>,
    segment: Segment,
}

/// Resident set size of `pid` in kB, from `/proc/<pid>/status`. `None` when
/// procfs is unavailable (non-Linux) or the process is gone.
fn rss_kb(pid: u32) -> Option<u64> {
    let status = std::fs::read_to_string(format!("/proc/{pid}/status")).ok()?;
    let line = status.lines().find(|l| l.starts_with("VmRSS:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// Spawns one `detect --fused` child and supervises it to exit: samples RSS
/// and watches the checkpoint file every `sample`, and — when `kill_after`
/// is set — delivers SIGKILL once that many fresh checkpoint writes have
/// been observed. Stdout is piped and drained after exit; a fused run only
/// prints its report at the end, so the pipe cannot fill mid-run.
fn drive_child(
    exe: &Path,
    argv: &[String],
    ckpt: &Path,
    sample: Duration,
    kill_after: Option<u64>,
) -> Result<Outcome, CliError> {
    let start = Instant::now();
    let mut child = Command::new(exe)
        .args(argv)
        .stdout(Stdio::piped())
        .spawn()?;
    let pid = child.id();
    let mut last_ckpt = std::fs::read(ckpt).ok();
    let mut fresh = 0u64;
    let mut peak = 0u64;
    let mut samples: Vec<RssSample> = Vec::new();
    let mut next_sample_sec = 0u64;
    let mut kill_sent = false;
    loop {
        if let Some(status) = child.try_wait()? {
            let mut stdout = Vec::new();
            if let Some(mut pipe) = child.stdout.take() {
                pipe.read_to_end(&mut stdout)?;
            }
            let exit_code = status.code();
            return Ok(Outcome {
                stdout,
                exit_code,
                segment: Segment {
                    kind: if exit_code.is_none() {
                        "killed".into()
                    } else {
                        "finished".into()
                    },
                    wall_ms: start.elapsed().as_millis() as u64,
                    peak_rss_kb: peak,
                    checkpoints_observed: fresh,
                    rss_samples: samples,
                },
            });
        }
        if let Some(kb) = rss_kb(pid) {
            peak = peak.max(kb);
            let sec = start.elapsed().as_secs();
            if sec >= next_sample_sec {
                samples.push(RssSample {
                    ms: start.elapsed().as_millis() as u64,
                    rss_kb: kb,
                });
                next_sample_sec = sec + 1;
            }
        }
        if let Ok(bytes) = std::fs::read(ckpt) {
            if last_ckpt.as_deref() != Some(&bytes[..]) {
                fresh += 1;
                last_ckpt = Some(bytes);
            }
        }
        if !kill_sent && kill_after.is_some_and(|n| fresh >= n) {
            // SIGKILL; racing a child that just exited is fine — the error
            // is "already dead" and try_wait picks up the real status.
            child.kill().ok();
            kill_sent = true;
        }
        std::thread::sleep(sample);
    }
}

/// `records` from a detect run's `session: N records, ...` stdout line.
fn parse_records(stdout: &[u8]) -> Option<u64> {
    let text = String::from_utf8_lossy(stdout);
    let line = text.lines().find(|l| l.starts_with("session: "))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// `soak`: see the module docs. Exit is non-zero unless every invariant
/// holds; `DIR/SOAK.json` is written either way so a failing run leaves
/// its evidence behind.
pub(crate) fn soak<W: std::io::Write>(args: &Args, out: &mut W) -> Result<(), CliError> {
    let Some(dir) = args.get("out") else {
        return Err(CliError::Usage("soak needs --out DIR".into()));
    };
    let dir = PathBuf::from(dir);
    std::fs::create_dir_all(&dir)?;
    let intensity: f64 = args.get_parsed("intensity", 1_250.0)?;
    let every: u64 = args.get_parsed("checkpoint-every", 10_000)?;
    if every == 0 {
        return Err(CliError::Usage(
            "soak needs --checkpoint-every > 0 (the kill trigger watches checkpoint writes)".into(),
        ));
    }
    let kills: u64 = args.get_parsed("kills", 2)?;
    let kill_after: u64 = args.get_parsed("kill-after-checkpoints", 2)?;
    if kills > 0 && kill_after == 0 {
        return Err(CliError::Usage(
            "--kill-after-checkpoints must be > 0 when --kills > 0".into(),
        ));
    }
    let sample = Duration::from_millis(args.get_parsed("sample-ms", 50)?);
    let max_rss_mb: u64 = args.get_parsed("max-rss-mb", 0)?;

    // Both runs share one argument vector (checkpoint path aside), so any
    // stdout divergence is the pipeline's fault, not the harness's.
    let mut base: Vec<String> = vec![
        "detect".into(),
        "--fused".into(),
        "--intensity".into(),
        intensity.to_string(),
        "--checkpoint-every".into(),
        every.to_string(),
    ];
    for flag in ["days", "seed", "gen-threads", "min-dsts", "agg", "batch"] {
        if let Some(v) = args.get(flag) {
            base.push(format!("--{flag}"));
            base.push(v.to_string());
        }
    }
    if args.has("small") {
        base.push("--small".into());
    }
    let child_args = |ckpt: &Path| -> Vec<String> {
        let mut v = base.clone();
        v.push("--checkpoint".into());
        v.push(ckpt.display().to_string());
        v
    };
    let exe = std::env::current_exe()?;

    // Phase 1: uninterrupted reference pass.
    writeln!(out, "soak: reference pass (intensity {intensity})")?;
    let ref_ckpt = dir.join("reference.l6ck");
    let reference = drive_child(&exe, &child_args(&ref_ckpt), &ref_ckpt, sample, None)?;
    if reference.exit_code != Some(0) {
        return Err(CliError::Soak(format!(
            "reference run exited with {:?} instead of 0",
            reference.exit_code
        )));
    }
    writeln!(
        out,
        "soak: reference finished in {} ms, peak RSS {} kB, {} checkpoints seen",
        reference.segment.wall_ms,
        reference.segment.peak_rss_kb,
        reference.segment.checkpoints_observed
    )?;

    // Phase 2: kill/resume chain against a fresh checkpoint path.
    let soak_ckpt = dir.join("soak.l6ck");
    let mut segments: Vec<Segment> = Vec::new();
    let mut kills_injected = 0u64;
    let final_stdout = loop {
        let remaining = kills.saturating_sub(kills_injected);
        let trigger = (remaining > 0).then_some(kill_after);
        let outcome = drive_child(&exe, &child_args(&soak_ckpt), &soak_ckpt, sample, trigger)?;
        let exit_code = outcome.exit_code;
        writeln!(
            out,
            "soak: segment {} {} after {} ms ({} checkpoints observed)",
            segments.len() + 1,
            outcome.segment.kind,
            outcome.segment.wall_ms,
            outcome.segment.checkpoints_observed
        )?;
        segments.push(outcome.segment);
        match exit_code {
            Some(0) => break outcome.stdout,
            None => kills_injected += 1,
            Some(code) => {
                return Err(CliError::Soak(format!(
                    "soak segment {} exited with code {code}",
                    segments.len()
                )))
            }
        }
    };

    // Phase 3: invariants.
    let report_identical = final_stdout == reference.stdout;
    let checkpoint_identical = std::fs::read(&ref_ckpt)? == std::fs::read(&soak_ckpt)?;
    let all_kills_injected = kills_injected == kills;
    let peak_rss_kb = segments
        .iter()
        .map(|s| s.peak_rss_kb)
        .chain([reference.segment.peak_rss_kb])
        .max()
        .unwrap_or(0);
    let rss_within_bound = max_rss_mb == 0 || peak_rss_kb <= max_rss_mb * 1024;
    let passed = report_identical && checkpoint_identical && all_kills_injected && rss_within_bound;

    let records = parse_records(&final_stdout).unwrap_or(0);
    let chain_wall_ms: u64 = segments.iter().map(|s| s.wall_ms).sum();
    let throughput_rps = if chain_wall_ms == 0 {
        0.0
    } else {
        records as f64 * 1_000.0 / chain_wall_ms as f64
    };

    let soak_report = SoakReport {
        intensity,
        checkpoint_every: every,
        kills_requested: kills,
        kills_injected,
        records,
        chain_wall_ms,
        throughput_rps,
        peak_rss_kb,
        max_rss_mb,
        reference: reference.segment,
        segments,
        invariants: Invariants {
            report_identical,
            checkpoint_identical,
            all_kills_injected,
            rss_within_bound,
        },
        passed,
    };
    let json = serde_json::to_string_pretty(&soak_report)
        .map_err(|e| CliError::Internal(format!("serialize SOAK.json: {e}")))?;
    // Atomic publication, like the metrics snapshots: a failing invariant
    // still leaves complete evidence, never a torn file.
    let path = dir.join("SOAK.json");
    let tmp = dir.join("SOAK.json.tmp");
    std::fs::write(&tmp, &json)?;
    std::fs::rename(&tmp, &path)?;
    writeln!(out, "soak -> {}", path.display())?;
    if args.has("json") {
        writeln!(out, "{json}")?;
    }

    if !passed {
        let mut broken = Vec::new();
        if !report_identical {
            broken.push("final report differs from the uninterrupted reference");
        }
        if !checkpoint_identical {
            broken.push("final checkpoint bytes differ from the reference chain");
        }
        if !all_kills_injected {
            broken.push("fewer kills injected than requested (workload too small?)");
        }
        if !rss_within_bound {
            broken.push("peak RSS exceeded --max-rss-mb");
        }
        return Err(CliError::Soak(broken.join("; ")));
    }
    writeln!(
        out,
        "soak: PASS — {kills_injected} kill -9 injected, {records} records, \
         {throughput_rps:.0} rec/s, peak RSS {peak_rss_kb} kB"
    )?;
    Ok(())
}
