//! The multi-tenant detection daemon.
//!
//! A [`Daemon`] hosts every tenant of a [`ServeConfig`] concurrently: each
//! tenant is an independent checkpointed [`Session`] over its own ingest
//! source, with its own watermark, quarantine counters, checkpoint file,
//! and spool directory. A small fixed worker pool multiplexes the tenants
//! via [`Session::step`] — the re-entrant core the consuming `run` loop is
//! a wrapper over — so three tailed live feeds and a bulk replay can share
//! two threads without any tenant starving the rest.
//!
//! # Spool layout
//!
//! ```text
//! <spool>/
//!   shutdown              # graceful-stop trigger (configurable path)
//!   <tenant>/
//!     checkpoint.l6ck     # + .prev + .tmp, via the session's own policy
//!     report.json         # newest SessionReport (periodic, then final)
//!     metrics.json        # newest per-tenant MetricsSnapshot
//!     status.json         # name, state, slices, records, resumed, error
//! ```
//!
//! All three JSON files are written atomically (tmp + rename), so a reader
//! — or a crash — never observes a torn document.
//!
//! # Crash recovery
//!
//! Tenants whose checkpoint path is unset get `<spool>/<tenant>/checkpoint.l6ck`
//! assigned automatically, so *every* tenant is durable under the daemon.
//! On restart each session auto-resumes from its newest valid checkpoint
//! (falling back to the `.prev` generation if the newest is torn) and
//! re-positions its source; a `kill -9` mid-ingest therefore loses at most
//! the records since the last checkpoint grid point, and the re-run's final
//! report is byte-identical to an uninterrupted run.
//!
//! # Graceful shutdown
//!
//! `unsafe` is forbidden workspace-wide, so there are no signal handlers:
//! the daemon polls for a stop file (default `<spool>/shutdown`). When it
//! appears, workers park, and every unfinished tenant is drained to a final
//! off-grid checkpoint ([`Session::checkpoint_now`]) plus a point-in-time
//! report ([`Session::report_now`]), then the daemon returns normally.
//! Wire it to signals from the shell: `trap 'touch spool/shutdown' TERM INT`.

use crate::config::{RunConfig, ServeConfig};
use lumen6_detect::{Session, SessionError, SessionReport, Step};
use lumen6_obs::MetricsRegistry;
use lumen6_trace::{CodecError, Source};
use serde::Serialize;
use std::collections::VecDeque;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// How often the coordinator polls the stop file and completion count.
const POLL_INTERVAL: Duration = Duration::from_millis(25);
/// Back-off before re-queueing a tenant whose source reported `Pending`.
const PENDING_BACKOFF: Duration = Duration::from_millis(2);

/// Errors from daemon construction and the run loop.
#[derive(Debug)]
pub enum ServeError {
    /// Spool or publication filesystem failure.
    Io(std::io::Error),
    /// Invalid manifest.
    Config(String),
    /// A tenant's ingest source failed to open.
    Codec(CodecError),
    /// A tenant session failed outside the step loop (drain path).
    Session(SessionError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "spool io: {e}"),
            ServeError::Config(m) => write!(f, "config: {m}"),
            ServeError::Codec(e) => write!(f, "ingest: {e}"),
            ServeError::Session(e) => write!(f, "session: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<CodecError> for ServeError {
    fn from(e: CodecError) -> Self {
        ServeError::Codec(e)
    }
}

impl From<SessionError> for ServeError {
    fn from(e: SessionError) -> Self {
        ServeError::Session(e)
    }
}

/// Lifecycle state of one tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TenantState {
    /// Still ingesting.
    Running,
    /// Stream finished; final report published.
    Finished,
    /// Drained by graceful shutdown; checkpoint and report published,
    /// resumable on the next start.
    Stopped,
    /// Step error; other tenants keep running.
    Failed,
}

impl TenantState {
    /// Stable lowercase name used in `status.json`.
    pub fn as_str(self) -> &'static str {
        match self {
            TenantState::Running => "running",
            TenantState::Finished => "finished",
            TenantState::Stopped => "stopped",
            TenantState::Failed => "failed",
        }
    }
}

/// Final per-tenant summary returned by [`Daemon::run`].
#[derive(Debug, Clone, Serialize)]
pub struct TenantStatus {
    /// Tenant name.
    pub name: String,
    /// Terminal state (`finished`, `stopped`, or `failed`).
    pub state: String,
    /// Records ingested by this daemon process (not counting pre-resume
    /// history).
    pub records: u64,
    /// Scheduling slices the tenant received.
    pub slices: u64,
    /// Whether the tenant resumed from an existing checkpoint at startup.
    pub resumed: bool,
    /// The step error, for `failed` tenants.
    pub error: Option<String>,
}

/// What [`Daemon::run`] returns: one [`TenantStatus`] per tenant, in
/// manifest order.
#[derive(Debug, Clone, Serialize)]
pub struct DaemonSummary {
    /// Per-tenant terminal states.
    pub tenants: Vec<TenantStatus>,
    /// True when the run ended via the stop file rather than every tenant
    /// finishing its stream.
    pub stopped: bool,
}

impl DaemonSummary {
    /// True if any tenant ended in the `failed` state.
    pub fn any_failed(&self) -> bool {
        self.tenants.iter().any(|t| t.state == "failed")
    }
}

/// Runtime state of one tenant: its session, source, spool directory, and
/// private metrics registry.
struct TenantRt {
    name: String,
    session: Session,
    source: Box<dyn Source>,
    registry: MetricsRegistry,
    dir: PathBuf,
    state: TenantState,
    slices: u64,
    records: u64,
    resumed: bool,
    error: Option<String>,
}

impl TenantRt {
    fn status(&self) -> TenantStatus {
        TenantStatus {
            name: self.name.clone(),
            state: self.state.as_str().to_string(),
            records: self.records,
            slices: self.slices,
            resumed: self.resumed,
            error: self.error.clone(),
        }
    }
}

/// Recovers a poisoned lock: metrics and spool publication must survive a
/// panicking worker.
fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Atomically writes `text` to `path` via a sibling tmp file + rename.
fn write_atomic(path: &Path, text: &str) -> std::io::Result<()> {
    let tmp = path.with_extension("json.tmp");
    std::fs::write(&tmp, text)?;
    std::fs::rename(&tmp, path)
}

/// Publishes a tenant's `report.json` + `metrics.json` + `status.json`.
/// IO failures are recorded on the tenant rather than tearing the daemon
/// down — the session itself is unharmed and keeps checkpointing.
fn publish(rt: &mut TenantRt, report: Option<&SessionReport>) {
    let mut result = Ok(());
    if let Some(report) = report {
        let json = serde_json::to_string_pretty(report).map_err(std::io::Error::other);
        result = json.and_then(|j| write_atomic(&rt.dir.join("report.json"), &j));
        rt.registry.counter("serve.tenant.publishes").add(1);
    }
    let snap = rt.registry.snapshot();
    let metrics = serde_json::to_string_pretty(&snap)
        .map_err(std::io::Error::other)
        .and_then(|j| write_atomic(&rt.dir.join("metrics.json"), &j));
    let status = serde_json::to_string_pretty(&rt.status())
        .map_err(std::io::Error::other)
        .and_then(|j| write_atomic(&rt.dir.join("status.json"), &j));
    if let Err(e) = result.and(metrics).and(status) {
        rt.error = Some(format!("publish: {e}"));
    }
}

/// Shared scheduler state: the ready queue plus one slot per tenant.
/// A worker *takes* the tenant out of its slot and runs the slice on the
/// owned value, so no lock is ever held across session stepping or spool
/// I/O (L006); queue discipline guarantees exclusivity — an index is
/// never in the ready queue while its slot is empty.
struct Shared {
    tenants: Vec<Mutex<Option<TenantRt>>>,
    queue: Mutex<VecDeque<usize>>,
    cvar: Condvar,
    quit: AtomicBool,
    done: AtomicUsize,
}

/// The configured daemon, ready to [`run`](Daemon::run).
pub struct Daemon {
    config: ServeConfig,
    tenants: Vec<TenantRt>,
    stop_file: PathBuf,
}

impl Daemon {
    /// Validates the manifest, lays out the spool, opens every tenant's
    /// ingest source, and builds its session. Tenants without an explicit
    /// checkpoint path get `<spool>/<tenant>/checkpoint.l6ck`, so every
    /// tenant is durable; tenants whose checkpoint file already exists
    /// will auto-resume on the first step.
    pub fn new(config: ServeConfig) -> Result<Daemon, ServeError> {
        config.validate().map_err(ServeError::Config)?;
        let spool = PathBuf::from(&config.spool);
        std::fs::create_dir_all(&spool)?;
        let stop_file = config
            .stop_file
            .as_ref()
            .map_or_else(|| spool.join("shutdown"), PathBuf::from);
        // A stale trigger from a previous graceful stop must not kill the
        // new process on arrival.
        match std::fs::remove_file(&stop_file) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e.into()),
        }
        let mut tenants = Vec::with_capacity(config.tenants.len());
        for spec in &config.tenants {
            let dir = spool.join(&spec.name);
            std::fs::create_dir_all(&dir)?;
            let mut run: RunConfig = spec.run.clone();
            if run.checkpoint.is_none() {
                run.checkpoint = Some(dir.join("checkpoint.l6ck").to_string_lossy().into_owned());
            }
            let resumed = run
                .checkpoint
                .as_ref()
                .is_some_and(|p| Path::new(p).exists());
            let source = run.make_source()?;
            let session = run.make_session();
            let registry = MetricsRegistry::new();
            if resumed {
                registry.counter("serve.tenant.resumed").add(1);
            }
            tenants.push(TenantRt {
                name: spec.name.clone(),
                session,
                source,
                registry,
                dir,
                state: TenantState::Running,
                slices: 0,
                records: 0,
                resumed,
                error: None,
            });
        }
        Ok(Daemon {
            config,
            tenants,
            stop_file,
        })
    }

    /// The stop file this daemon polls (for tests and status output).
    pub fn stop_file(&self) -> &Path {
        &self.stop_file
    }

    /// Number of configured tenants.
    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    /// Runs every tenant to completion or until the stop file appears,
    /// then drains unfinished tenants to a final checkpoint + report.
    /// Always returns a summary; individual tenant failures surface as
    /// `failed` entries, not as an error.
    pub fn run(mut self) -> Result<DaemonSummary, ServeError> {
        let total = self.tenants.len();
        let shared = Shared {
            tenants: self
                .tenants
                .drain(..)
                .map(|t| Mutex::new(Some(t)))
                .collect(),
            queue: Mutex::new((0..total).collect()),
            cvar: Condvar::new(),
            quit: AtomicBool::new(false),
            done: AtomicUsize::new(0),
        };
        let steps = self.config.steps_per_slice;
        let publish_every = self.config.publish_every_slices.max(1);
        let mut stopped = false;
        std::thread::scope(|scope| {
            for _ in 0..self.config.workers {
                scope.spawn(|| worker(&shared, steps, publish_every));
            }
            loop {
                if shared.done.load(Ordering::Acquire) >= total {
                    break;
                }
                if self.stop_file.exists() {
                    stopped = true;
                    break;
                }
                // Wake promptly when a worker finishes the last tenant
                // (workers notify the condvar); the timeout bounds how
                // stale the stop-file check can get.
                let queue = lock(&shared.queue);
                drop(
                    shared
                        .cvar
                        .wait_timeout(queue, POLL_INTERVAL)
                        .unwrap_or_else(PoisonError::into_inner)
                        .0,
                );
            }
            shared.quit.store(true, Ordering::Release);
            shared.cvar.notify_all();
        });
        let mut tenants: Vec<TenantRt> = shared
            .tenants
            .into_iter()
            .filter_map(|m| m.into_inner().unwrap_or_else(PoisonError::into_inner))
            .collect();
        if stopped {
            for rt in &mut tenants {
                if rt.state != TenantState::Running {
                    continue;
                }
                match drain(rt) {
                    Ok(report) => {
                        rt.state = TenantState::Stopped;
                        publish(rt, Some(&report));
                    }
                    Err(e) => {
                        rt.state = TenantState::Failed;
                        rt.error = Some(format!("drain: {e}"));
                        publish(rt, None);
                    }
                }
            }
        }
        Ok(DaemonSummary {
            tenants: tenants.iter().map(TenantRt::status).collect(),
            stopped,
        })
    }
}

/// Graceful-shutdown drain of one running tenant: off-grid checkpoint so
/// the next start resumes here, then a point-in-time report that leaves
/// the session resumable.
fn drain(rt: &mut TenantRt) -> Result<SessionReport, SessionError> {
    rt.session.checkpoint_now(rt.source.as_mut())?;
    rt.session.report_now()
}

/// Worker loop: pop a tenant, give it `steps` session steps, publish on
/// its slice grid, re-queue it unless it reached a terminal state.
fn worker(shared: &Shared, steps: u32, publish_every: u64) {
    loop {
        let idx = {
            let mut queue = lock(&shared.queue);
            loop {
                if shared.quit.load(Ordering::Acquire) {
                    return;
                }
                if let Some(idx) = queue.pop_front() {
                    break idx;
                }
                queue = shared
                    .cvar
                    .wait_timeout(queue, Duration::from_millis(50))
                    .unwrap_or_else(PoisonError::into_inner)
                    .0;
            }
        };
        // Take the tenant out of its slot: the slice below does file I/O
        // (checkpoints, spool publication), which must not run under the
        // slot lock. The slot lock is only ever held for the take/put.
        let Some(mut tenant) = lock(&shared.tenants[idx]).take() else {
            // Defensive — queue discipline means this cannot happen, but
            // an empty slot must not kill the worker: whoever holds the
            // tenant is responsible for re-queueing it.
            continue;
        };
        let rt = &mut tenant;
        let mut requeue = true;
        let mut pending = false;
        let mut slice_records: u64 = 0;
        for _ in 0..steps {
            if shared.quit.load(Ordering::Acquire) {
                break;
            }
            match rt.session.step(rt.source.as_mut()) {
                Ok(Step::Ingested(n)) => {
                    let n = n as u64;
                    rt.records += n;
                    slice_records += n;
                }
                Ok(Step::Pending) => {
                    rt.registry.counter("serve.tenant.pending_polls").add(1);
                    pending = true;
                    break;
                }
                Ok(Step::Finished(report)) => {
                    rt.state = TenantState::Finished;
                    publish(rt, Some(&report));
                    requeue = false;
                    break;
                }
                // `stop_after` is rejected by manifest validation, so a
                // deliberate stop cannot normally happen; treat it like a
                // drain if it does (e.g. a future knob).
                Ok(Step::Stopped { .. }) | Err(SessionError::Done) => {
                    rt.state = TenantState::Stopped;
                    let report = rt.session.report_now().ok();
                    publish(rt, report.as_ref());
                    requeue = false;
                    break;
                }
                Err(e) => {
                    rt.state = TenantState::Failed;
                    rt.error = Some(e.to_string());
                    publish(rt, None);
                    requeue = false;
                    break;
                }
            }
        }
        rt.slices += 1;
        rt.registry.counter("serve.tenant.slices").add(1);
        rt.registry
            .counter("serve.tenant.records")
            .add(slice_records);
        rt.registry
            .histogram("serve.tenant.slice_records")
            .record(slice_records);
        if requeue && rt.slices.is_multiple_of(publish_every) {
            match rt.session.report_now() {
                Ok(report) => publish(rt, Some(&report)),
                Err(_) => publish(rt, None),
            }
        }
        // Put the tenant back before re-queueing its index, so the next
        // worker to pop it always finds the slot occupied.
        *lock(&shared.tenants[idx]) = Some(tenant);
        if requeue {
            if pending {
                std::thread::sleep(PENDING_BACKOFF);
            }
            lock(&shared.queue).push_back(idx);
            // The main loop shares this condvar, so `notify_one` could
            // wake it instead of an idle worker and strand the tenant for
            // a worker wait-timeout; wake everyone.
            shared.cvar.notify_all();
        } else {
            shared.done.fetch_add(1, Ordering::AcqRel);
            shared.cvar.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{RunConfig, TenantSpec};
    use lumen6_trace::TraceWriter;

    struct TempDir(PathBuf);
    impl TempDir {
        fn new(tag: &str) -> TempDir {
            let dir =
                std::env::temp_dir().join(format!("lumen6-serve-{tag}-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).unwrap();
            TempDir(dir)
        }
        fn path(&self, name: &str) -> PathBuf {
            self.0.join(name)
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn fused_run(days: u64) -> RunConfig {
        RunConfig {
            fused: true,
            small: true,
            days: Some(days),
            sequential: true,
            checkpoint_every: 100,
            ..Default::default()
        }
    }

    fn manifest(spool: &Path, tenants: Vec<TenantSpec>) -> ServeConfig {
        ServeConfig {
            spool: spool.to_string_lossy().into_owned(),
            workers: 2,
            tenants,
            ..Default::default()
        }
    }

    #[test]
    fn daemon_runs_two_fused_tenants_to_completion() {
        let tmp = TempDir::new("run");
        let spool = tmp.path("spool");
        let cfg = manifest(
            &spool,
            vec![
                TenantSpec {
                    name: "alpha".into(),
                    run: fused_run(1),
                },
                TenantSpec {
                    name: "beta".into(),
                    run: RunConfig {
                        seed: 7,
                        ..fused_run(2)
                    },
                },
            ],
        );
        let summary = Daemon::new(cfg).unwrap().run().unwrap();
        assert!(!summary.stopped);
        assert!(!summary.any_failed());
        for t in &summary.tenants {
            assert_eq!(t.state, "finished", "{t:?}");
            assert!(t.records > 0);
            assert!(!t.resumed);
            let dir = spool.join(&t.name);
            for f in ["report.json", "metrics.json", "status.json"] {
                assert!(dir.join(f).exists(), "{} missing {f}", t.name);
            }
            assert!(dir.join("checkpoint.l6ck").exists());
        }
    }

    fn write_trace(path: &Path, records: &[lumen6_trace::PacketRecord]) {
        let mut w = TraceWriter::new(std::fs::File::create(path).unwrap()).unwrap();
        for r in records {
            w.append(r).unwrap();
        }
        w.finish().unwrap();
    }

    fn small_world_records(days: u64) -> Vec<lumen6_trace::PacketRecord> {
        lumen6_scanners::World::build(lumen6_scanners::FleetConfig {
            end_day: days,
            ..lumen6_scanners::FleetConfig::small()
        })
        .cdn_trace()
    }

    /// A graceful stop drains to an off-grid checkpoint; the restarted
    /// daemon resumes there and its finished report carries the same
    /// detection results as an uninterrupted run. (`checkpoints_written`
    /// legitimately differs by the drain checkpoint, so the comparison is
    /// on the parsed `reports`/`records` fields, not raw bytes — the raw
    /// byte identity under `kill -9` is covered by the CLI serve tests.)
    #[test]
    fn stopped_daemon_resumes_to_equivalent_report() {
        let tmp = TempDir::new("resume");
        let trace = tmp.path("live.l6tr");
        let records = small_world_records(1);
        assert!(records.len() > 100, "trace too small to exercise resume");
        write_trace(&trace, &records);

        // Uninterrupted reference over the same bytes, as a plain trace.
        let ref_cfg = manifest(
            &tmp.path("ref"),
            vec![TenantSpec {
                name: "t".into(),
                run: RunConfig {
                    trace: Some(trace.to_string_lossy().into_owned()),
                    sequential: true,
                    checkpoint_every: 100,
                    ..Default::default()
                },
            }],
        );
        let summary = Daemon::new(ref_cfg).unwrap().run().unwrap();
        assert_eq!(summary.tenants[0].state, "finished");
        let reference = std::fs::read_to_string(tmp.path("ref").join("t/report.json")).unwrap();

        // A tail tenant over the same file, with no `.eof` marker: it can
        // only pend once the file is drained, so the stop file always wins.
        let spool = tmp.path("spool");
        let tail_run = RunConfig {
            tail: Some(trace.to_string_lossy().into_owned()),
            sequential: true,
            checkpoint_every: 100,
            ..Default::default()
        };
        let make = |run: RunConfig| {
            manifest(
                &spool,
                vec![TenantSpec {
                    name: "t".into(),
                    run,
                }],
            )
        };
        let daemon = Daemon::new(make(tail_run.clone())).unwrap();
        let stop = daemon.stop_file().to_path_buf();
        let handle = std::thread::spawn(move || daemon.run().unwrap());
        // Wait until the tenant demonstrably made progress (first periodic
        // publication), then trigger the graceful stop.
        let metrics = spool.join("t/metrics.json");
        for _ in 0..400 {
            if metrics.exists() {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(metrics.exists(), "tenant never published");
        std::fs::write(&stop, b"").unwrap();
        let summary = handle.join().unwrap();
        assert!(summary.stopped);
        assert_eq!(summary.tenants[0].state, "stopped");
        assert!(spool.join("t/checkpoint.l6ck").exists());

        // Restart with the EOF marker present: the tenant resumes from its
        // drain checkpoint and finishes.
        std::fs::write(tmp.path("live.l6tr.eof"), b"").unwrap();
        let summary = Daemon::new(make(tail_run)).unwrap().run().unwrap();
        assert_eq!(summary.tenants[0].state, "finished");
        assert!(summary.tenants[0].resumed);
        let resumed = std::fs::read_to_string(spool.join("t/report.json")).unwrap();
        let reference: serde_json::Value = serde_json::from_str(&reference).unwrap();
        let resumed: serde_json::Value = serde_json::from_str(&resumed).unwrap();
        for field in ["reports", "records", "late_dropped", "decode_skipped"] {
            assert_eq!(
                resumed.get(field),
                reference.get(field),
                "field {field} differs after resume"
            );
        }
    }

    #[test]
    fn tail_tenant_pends_until_eof_marker() {
        let tmp = TempDir::new("tail");
        let trace = tmp.path("live.l6tr");
        // Write a complete small trace, then mark EOF up front: the tenant
        // must drain it and finish.
        let records = small_world_records(1);
        write_trace(&trace, &records);
        std::fs::write(tmp.path("live.l6tr.eof"), b"").unwrap();

        let cfg = manifest(
            &tmp.path("spool"),
            vec![TenantSpec {
                name: "live".into(),
                run: RunConfig {
                    tail: Some(trace.to_string_lossy().into_owned()),
                    sequential: true,
                    ..Default::default()
                },
            }],
        );
        let summary = Daemon::new(cfg).unwrap().run().unwrap();
        assert_eq!(summary.tenants[0].state, "finished");
        assert_eq!(summary.tenants[0].records, records.len() as u64);
    }

    #[test]
    fn failed_tenant_does_not_take_down_the_rest() {
        let tmp = TempDir::new("fail");
        let bogus = tmp.path("garbage.l6tr");
        std::fs::write(&bogus, b"not a trace at all").unwrap();
        let cfg = manifest(
            &tmp.path("spool"),
            vec![TenantSpec {
                name: "ok".into(),
                run: fused_run(1),
            }],
        );
        // A bad trace fails at Daemon::new (source open), so build it with
        // a tail source instead: opening is lazy, decode fails on step.
        let mut cfg = cfg;
        cfg.tenants.push(TenantSpec {
            name: "bad".into(),
            run: RunConfig {
                tail: Some(bogus.to_string_lossy().into_owned()),
                strict: true,
                ..Default::default()
            },
        });
        std::fs::write(tmp.path("garbage.l6tr.eof"), b"").unwrap();
        let summary = Daemon::new(cfg).unwrap().run().unwrap();
        assert!(summary.any_failed());
        let by_name = |n: &str| {
            summary
                .tenants
                .iter()
                .find(|t| t.name == n)
                .unwrap()
                .clone()
        };
        assert_eq!(by_name("ok").state, "finished");
        assert_eq!(by_name("bad").state, "failed");
        assert!(by_name("bad").error.is_some());
    }
}
