//! Minimal TOML subset parser producing a [`serde::value::Value`] tree.
//!
//! The build environment vendors no TOML crate, so the daemon ships the
//! subset its config files actually need:
//!
//! - `key = value` pairs with bare (`[A-Za-z0-9_-]+`) or `"quoted"` keys,
//!   including dotted paths (`tenants.alpha.trace = "a.l6tr"`),
//! - `[table.header]` sections (dotted paths create nested tables),
//! - basic strings with `\" \\ \n \t \r` escapes, integers (with `_`
//!   separators), floats, booleans, and single-line `[a, b, c]` arrays,
//! - `#` comments and blank lines.
//!
//! Unsupported TOML (array-of-tables `[[x]]`, multi-line strings, dates,
//! inline tables) fails loudly with a line number rather than parsing to
//! something surprising. Duplicate keys and conflicting table/value
//! definitions are errors, matching TOML semantics.

use serde::value::Value;

/// Parses `text` into a [`Value::Object`] tree, or an error naming the
/// offending 1-based line.
pub fn parse(text: &str) -> Result<Value, String> {
    let mut root: Vec<(String, Value)> = Vec::new();
    // Current `[section]` path; `key = value` lines land under it.
    let mut section: Vec<String> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("[[") {
            return Err(format!(
                "line {lineno}: array-of-tables [[{}]] is not supported; use a \
                 [tables.name] section per entry",
                rest.trim_end_matches("]]")
            ));
        }
        if let Some(inner) = line.strip_prefix('[') {
            let inner = inner
                .strip_suffix(']')
                .ok_or_else(|| format!("line {lineno}: unterminated table header"))?;
            section = parse_key_path(inner).map_err(|e| format!("line {lineno}: {e}"))?;
            // Materialize the table so empty sections still appear.
            ensure_table(&mut root, &section).map_err(|e| format!("line {lineno}: {e}"))?;
            continue;
        }
        let eq = find_unquoted(line, '=')
            .ok_or_else(|| format!("line {lineno}: expected `key = value` or `[table]`"))?;
        let mut path = section.clone();
        path.extend(parse_key_path(&line[..eq]).map_err(|e| format!("line {lineno}: {e}"))?);
        let value =
            parse_value(line[eq + 1..].trim()).map_err(|e| format!("line {lineno}: {e}"))?;
        let Some((key, tables)) = path.split_last() else {
            return Err(format!("line {lineno}: empty key"));
        };
        let table = ensure_table(&mut root, tables).map_err(|e| format!("line {lineno}: {e}"))?;
        if table.iter().any(|(k, _)| k == key) {
            return Err(format!("line {lineno}: duplicate key {key:?}"));
        }
        table.push((key.clone(), value));
    }
    Ok(Value::Object(root))
}

/// Drops a `#` comment, ignoring `#` inside quoted strings.
fn strip_comment(line: &str) -> &str {
    match find_unquoted(line, '#') {
        Some(i) => &line[..i],
        None => line,
    }
}

/// Byte offset of the first unquoted `target` character.
fn find_unquoted(line: &str, target: char) -> Option<usize> {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            c if c == target && !in_str => return Some(i),
            _ => {}
        }
    }
    None
}

/// Splits a dotted key path (`a.b."c d"`) into segments.
fn parse_key_path(text: &str) -> Result<Vec<String>, String> {
    let mut segments = Vec::new();
    for part in split_unquoted(text, '.') {
        let part = part.trim();
        let seg = if let Some(q) = part.strip_prefix('"') {
            let q = q
                .strip_suffix('"')
                .ok_or_else(|| format!("unterminated quoted key in {text:?}"))?;
            unescape(q)?
        } else {
            if part.is_empty()
                || !part
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || "-_".contains(c))
            {
                return Err(format!("invalid bare key segment {part:?}"));
            }
            part.to_string()
        };
        segments.push(seg);
    }
    if segments.is_empty() {
        return Err("empty key".into());
    }
    Ok(segments)
}

/// Splits on unquoted occurrences of `sep`.
fn split_unquoted(text: &str, sep: char) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut rest = text;
    while let Some(i) = find_unquoted(rest, sep) {
        parts.push(&rest[..i]);
        rest = &rest[i + sep.len_utf8()..];
    }
    parts.push(rest);
    parts
}

fn unescape(s: &str) -> Result<String, String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            Some('r') => out.push('\r'),
            other => return Err(format!("unsupported string escape \\{other:?}")),
        }
    }
    Ok(out)
}

/// Walks (creating as needed) the nested object at `path` under `root`.
fn ensure_table<'a>(
    root: &'a mut Vec<(String, Value)>,
    path: &[String],
) -> Result<&'a mut Vec<(String, Value)>, String> {
    let mut table = root;
    for seg in path {
        if !table.iter().any(|(k, _)| k == seg) {
            table.push((seg.clone(), Value::Object(Vec::new())));
        }
        // Separate lookup pass to satisfy the borrow checker.
        let idx = table
            .iter()
            .position(|(k, _)| k == seg)
            .unwrap_or(table.len() - 1);
        match &mut table[idx].1 {
            Value::Object(fields) => table = fields,
            other => {
                return Err(format!(
                    "key {seg:?} is already a {}, not a table",
                    other.kind()
                ))
            }
        }
    }
    Ok(table)
}

/// Parses one TOML value: string, bool, array, integer, or float.
fn parse_value(text: &str) -> Result<Value, String> {
    if text.is_empty() {
        return Err("missing value".into());
    }
    if let Some(q) = text.strip_prefix('"') {
        let q = q
            .strip_suffix('"')
            .ok_or_else(|| format!("unterminated string {text:?}"))?;
        return Ok(Value::Str(unescape(q)?));
    }
    match text {
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        _ => {}
    }
    if let Some(inner) = text.strip_prefix('[') {
        let inner = inner
            .strip_suffix(']')
            .ok_or_else(|| format!("unterminated array {text:?} (arrays must be single-line)"))?;
        let mut items = Vec::new();
        if !inner.trim().is_empty() {
            for item in split_unquoted(inner, ',') {
                let item = item.trim();
                if item.is_empty() {
                    continue; // permit a trailing comma
                }
                items.push(parse_value(item)?);
            }
        }
        return Ok(Value::Array(items));
    }
    let num = text.replace('_', "");
    if num.contains(['.', 'e', 'E']) {
        if let Ok(f) = num.parse::<f64>() {
            return Ok(Value::Float(f));
        }
    } else if let Some(neg) = num.strip_prefix('-') {
        if let Ok(n) = neg.parse::<u128>() {
            return Ok(Value::Int(
                -(i128::try_from(n).map_err(|_| "integer overflow")?),
            ));
        }
    } else if let Ok(n) = num.parse::<u128>() {
        return Ok(Value::UInt(n));
    }
    Err(format!("cannot parse value {text:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(v: &Value) -> &Vec<(String, Value)> {
        match v {
            Value::Object(fields) => fields,
            other => panic!("expected object, got {other:?}"),
        }
    }

    #[test]
    fn parses_flat_pairs_and_comments() {
        let v = parse(
            "# header comment\n\
             name = \"alpha\" # trailing\n\
             workers = 4\n\
             ratio = 0.5\n\
             strict = true\n\
             neg = -12\n\
             big = 1_000_000\n",
        )
        .unwrap();
        assert_eq!(v.get("name"), Some(&Value::Str("alpha".into())));
        assert_eq!(v.get("workers"), Some(&Value::UInt(4)));
        assert_eq!(v.get("ratio"), Some(&Value::Float(0.5)));
        assert_eq!(v.get("strict"), Some(&Value::Bool(true)));
        assert_eq!(v.get("neg"), Some(&Value::Int(-12)));
        assert_eq!(v.get("big"), Some(&Value::UInt(1_000_000)));
    }

    #[test]
    fn sections_and_dotted_keys_nest() {
        let v = parse(
            "[tenants.alpha]\n\
             trace = \"a.l6tr\"\n\
             [tenants.beta]\n\
             fused = true\n\
             run.seed = 7\n",
        )
        .unwrap();
        let tenants = v.get("tenants").unwrap();
        let alpha = tenants.get("alpha").unwrap();
        assert_eq!(alpha.get("trace"), Some(&Value::Str("a.l6tr".into())));
        let beta = tenants.get("beta").unwrap();
        assert_eq!(beta.get("fused"), Some(&Value::Bool(true)));
        assert_eq!(beta.get("run").unwrap().get("seed"), Some(&Value::UInt(7)));
        assert_eq!(obj(tenants).len(), 2);
    }

    #[test]
    fn strings_keep_hashes_and_escapes() {
        let v = parse("path = \"/tmp/#1/a\\\"b\"\n").unwrap();
        assert_eq!(v.get("path"), Some(&Value::Str("/tmp/#1/a\"b".into())));
    }

    #[test]
    fn arrays_parse_single_line() {
        let v = parse("levels = [128, 64, 48]\nempty = []\n").unwrap();
        assert_eq!(
            v.get("levels"),
            Some(&Value::Array(vec![
                Value::UInt(128),
                Value::UInt(64),
                Value::UInt(48)
            ]))
        );
        assert_eq!(v.get("empty"), Some(&Value::Array(Vec::new())));
    }

    #[test]
    fn errors_name_the_line() {
        assert!(parse("a = 1\nb = ???\n").unwrap_err().contains("line 2"));
        assert!(parse("[[tenant]]\n").unwrap_err().contains("line 1"));
        assert!(parse("a = 1\na = 2\n").unwrap_err().contains("duplicate"));
        assert!(parse("a = 1\n[a]\nb = 2\n")
            .unwrap_err()
            .contains("not a table"));
        assert!(parse("x\n").unwrap_err().contains("expected"));
    }

    #[test]
    fn duplicate_across_section_and_dotted_key_rejected() {
        let err = parse("t.a.x = 2\n[t.a]\nx = 1\n").unwrap_err();
        assert!(err.contains("duplicate"), "{err}");
    }

    #[test]
    fn dotted_keys_inside_a_section_stay_relative() {
        let v = parse("[t]\na.x = 1\n").unwrap();
        let x = v.get("t").unwrap().get("a").unwrap().get("x");
        assert_eq!(x, Some(&Value::UInt(1)));
    }
}
