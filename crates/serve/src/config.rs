//! Run and daemon configuration.
//!
//! [`RunConfig`] consolidates every knob of a single detection run — the
//! ~20 `lumen6 detect` command-line flags — into one serde struct, loadable
//! from a TOML file (`lumen6 detect --config FILE`, flags override) and
//! reused verbatim as the per-tenant configuration of `lumen6 serve`.
//!
//! [`ServeConfig`] is the daemon manifest: scheduler shape plus a named
//! [`RunConfig`] per tenant:
//!
//! ```toml
//! spool = "spool"
//! workers = 2
//!
//! [tenants.cdn-live]
//! tail = "ingest/cdn.l6tr"
//! min_dsts = 100
//! watermark_secs = 5
//!
//! [tenants.replay]
//! trace = "archive/week12.l6tr"
//! ```
//!
//! Both structs derive `Serialize`, which places their schemas under the
//! L004 fingerprint: renaming or re-typing a field without blessing the
//! analyzer snapshot is a build failure, exactly like checkpoint drift.
//! `Deserialize` is written by hand so every field is optional with the
//! CLI's defaults, and unknown keys are rejected with the offending name
//! (a typo'd tenant knob must not silently fall back to a default).

use crate::toml;
use lumen6_detect::{
    Backend, CheckpointPolicy, DetectorBuilder, ScanDetectorConfig, Session, SessionConfig,
    ShardPlan, SketchConfig,
};
use lumen6_scanners::{FleetConfig, FleetSource, ParallelFleetSource, World};
use lumen6_trace::{CodecError, FileStreamSource, Source, TailSource};
use serde::value::{DeError, Value};
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Complete configuration of one detection run. Field names match the
/// `lumen6 detect` flags with `-` → `_`; paths are strings so the struct
/// round-trips through the vendored serde (which has no `PathBuf` impl).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RunConfig {
    /// Ingest: an L6TR trace file read to EOF.
    pub trace: Option<String>,
    /// Ingest: a growing L6TR file followed live ([`TailSource`]); ends
    /// when the `<path>.eof` marker appears.
    pub tail: Option<String>,
    /// Ingest: synthesize the CDN fleet stream in-process (no file).
    pub fused: bool,
    /// Source aggregation prefix length (128/64/48/32).
    pub agg: u8,
    /// Minimum distinct destinations for a run to qualify as a scan.
    pub min_dsts: u64,
    /// Maximum intra-scan packet gap, seconds.
    pub timeout_secs: u64,
    /// HyperLogLog precision for spill-to-sketch counting; `None` = exact.
    pub sketch_precision: Option<u8>,
    /// Shard count for the parallel backend; 0 = one per hardware thread.
    pub threads: usize,
    /// Use the single-threaded reference backend.
    pub sequential: bool,
    /// Reorder-buffer watermark, seconds; 0 = sorted input.
    pub watermark_secs: u64,
    /// Records staged per columnar detector batch.
    pub batch: usize,
    /// Abort on recoverable decode errors instead of quarantine-and-skip.
    pub strict: bool,
    /// Checkpoint file; `None` disables durability (the daemon assigns a
    /// spool path instead).
    pub checkpoint: Option<String>,
    /// Checkpoint every this many records.
    pub checkpoint_every: u64,
    /// Stop (exit-3 style) after N checkpoints — a resume-test knob,
    /// rejected for daemon tenants.
    pub stop_after: Option<u64>,
    /// Close idle detector runs whenever stream time advances this far,
    /// seconds; 0 disables.
    pub flush_idle_secs: u64,
    /// Fused generation: days to simulate (`None` = generator default).
    pub days: Option<u64>,
    /// Fused generation: master seed.
    pub seed: u64,
    /// Fused generation: the small calibration fleet.
    pub small: bool,
    /// Fused generation: packet-volume multiplier.
    pub intensity: f64,
    /// Fused generation: generator threads. 1 = the single-threaded
    /// [`FleetSource`]; N > 1 = [`ParallelFleetSource`] with N workers;
    /// 0 = one worker per hardware thread. Output is byte-identical for
    /// every value.
    pub gen_threads: usize,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            trace: None,
            tail: None,
            fused: false,
            agg: 64,
            min_dsts: 100,
            timeout_secs: 3_600,
            sketch_precision: None,
            threads: 0,
            sequential: false,
            watermark_secs: 0,
            batch: lumen6_detect::DEFAULT_SESSION_BATCH,
            strict: false,
            checkpoint: None,
            checkpoint_every: 100_000,
            stop_after: None,
            flush_idle_secs: 0,
            days: None,
            seed: 42,
            small: false,
            intensity: 1.0,
            gen_threads: 1,
        }
    }
}

impl Deserialize for RunConfig {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let Value::Object(fields) = v else {
            return Err(DeError::expected("RunConfig table", v));
        };
        let mut cfg = RunConfig::default();
        for (key, val) in fields {
            // Serialized `None` options come back as nulls: not set.
            if matches!(val, Value::Null) {
                continue;
            }
            match key.as_str() {
                "trace" => cfg.trace = Some(String::from_value(val)?),
                "tail" => cfg.tail = Some(String::from_value(val)?),
                "fused" => cfg.fused = bool::from_value(val)?,
                "agg" => cfg.agg = u8::from_value(val)?,
                "min_dsts" => cfg.min_dsts = u64::from_value(val)?,
                "timeout_secs" => cfg.timeout_secs = u64::from_value(val)?,
                "sketch_precision" => cfg.sketch_precision = Some(u8::from_value(val)?),
                "threads" => cfg.threads = usize::from_value(val)?,
                "sequential" => cfg.sequential = bool::from_value(val)?,
                "watermark_secs" => cfg.watermark_secs = u64::from_value(val)?,
                "batch" => cfg.batch = usize::from_value(val)?,
                "strict" => cfg.strict = bool::from_value(val)?,
                "checkpoint" => cfg.checkpoint = Some(String::from_value(val)?),
                "checkpoint_every" => cfg.checkpoint_every = u64::from_value(val)?,
                "stop_after" => cfg.stop_after = Some(u64::from_value(val)?),
                "flush_idle_secs" => cfg.flush_idle_secs = u64::from_value(val)?,
                "days" => cfg.days = Some(u64::from_value(val)?),
                "seed" => cfg.seed = u64::from_value(val)?,
                "small" => cfg.small = bool::from_value(val)?,
                "intensity" => cfg.intensity = f64::from_value(val)?,
                "gen_threads" => cfg.gen_threads = usize::from_value(val)?,
                other => {
                    return Err(DeError::msg(format!("unknown RunConfig key {other:?}")));
                }
            }
        }
        Ok(cfg)
    }
}

impl RunConfig {
    /// Parses a flat TOML file (the `detect --config FILE` format).
    pub fn from_toml_str(text: &str) -> Result<RunConfig, String> {
        let value = toml::parse(text)?;
        RunConfig::from_value(&value).map_err(|e| e.to_string())
    }

    /// Checks cross-field consistency: exactly one ingest source, positive
    /// finite intensity, `stop_after` only with a checkpoint path.
    pub fn validate(&self) -> Result<(), String> {
        let sources = usize::from(self.trace.is_some())
            + usize::from(self.tail.is_some())
            + usize::from(self.fused);
        if sources == 0 {
            return Err("no ingest source: set one of trace, tail, or fused".into());
        }
        if sources > 1 {
            return Err("ambiguous ingest: trace, tail, and fused are mutually exclusive".into());
        }
        if !self.intensity.is_finite() || self.intensity <= 0.0 {
            return Err(format!(
                "intensity must be a positive finite number, got {}",
                self.intensity
            ));
        }
        if self.stop_after.is_some() && self.checkpoint.is_none() {
            return Err("stop_after needs a checkpoint path".into());
        }
        if self.gen_threads != 1 && !self.fused {
            return Err("gen_threads applies only to fused generation".into());
        }
        Ok(())
    }

    /// The detector-layer configuration.
    pub fn detector_config(&self) -> ScanDetectorConfig {
        ScanDetectorConfig {
            agg: lumen6_detect::AggLevel::new(self.agg),
            min_dsts: self.min_dsts,
            timeout_ms: self.timeout_secs * 1000,
            sketch: self.sketch_precision.map(|precision| SketchConfig {
                spill_threshold: 4_096,
                precision,
            }),
            ..Default::default()
        }
    }

    /// The dispatch backend: `sequential` wins, then an explicit shard
    /// count, then one shard per hardware thread.
    pub fn backend(&self) -> Backend {
        if self.sequential {
            Backend::Sequential
        } else if self.threads > 0 {
            Backend::Sharded(ShardPlan::with_shards(self.threads))
        } else {
            Backend::Sharded(ShardPlan::default())
        }
    }

    /// The session-layer configuration.
    pub fn session_config(&self) -> SessionConfig {
        SessionConfig {
            watermark_ms: self.watermark_secs * 1000,
            checkpoint: self.checkpoint.as_ref().map(|path| CheckpointPolicy {
                path: path.into(),
                every_records: self.checkpoint_every,
                stop_after: self.stop_after,
            }),
            flush_idle_every_ms: self.flush_idle_secs * 1000,
            strict: self.strict,
            batch: self.batch,
        }
    }

    /// The fused-generation fleet configuration.
    pub fn fleet_config(&self) -> FleetConfig {
        let mut cfg = if self.small {
            FleetConfig::small()
        } else {
            FleetConfig::default()
        };
        cfg.seed = self.seed;
        cfg.end_day = self.days.unwrap_or(cfg.end_day);
        cfg.intensity = self.intensity;
        cfg
    }

    /// Opens the configured ingest source.
    pub fn make_source(&self) -> Result<Box<dyn Source>, CodecError> {
        let permissive = !self.strict;
        if let Some(path) = &self.trace {
            return Ok(Box::new(
                FileStreamSource::open(Path::new(path))?.permissive(permissive),
            ));
        }
        if let Some(path) = &self.tail {
            return Ok(Box::new(
                TailSource::open(Path::new(path)).permissive(permissive),
            ));
        }
        let world = World::build(self.fleet_config());
        match self.gen_threads {
            1 => Ok(Box::new(FleetSource::new(world))),
            0 => {
                // Auto: one generator per hardware thread. Purely a
                // throughput knob — the output is thread-count-invariant.
                let n = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
                Ok(Box::new(ParallelFleetSource::new(world, n)))
            }
            n => Ok(Box::new(ParallelFleetSource::new(world, n))),
        }
    }

    /// Builds the full [`Session`] this configuration describes.
    pub fn make_session(&self) -> Session {
        Session::new(
            DetectorBuilder::new(self.detector_config()),
            self.backend(),
            self.session_config(),
        )
    }
}

/// One daemon tenant: a unique name (also its spool subdirectory) plus the
/// run it hosts.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TenantSpec {
    /// Tenant name; restricted to `[A-Za-z0-9._-]` so it is usable as a
    /// directory name.
    pub name: String,
    /// The tenant's detection run.
    pub run: RunConfig,
}

/// The `lumen6 serve` manifest.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ServeConfig {
    /// Spool directory: per-tenant checkpoints, reports, metrics, status.
    pub spool: String,
    /// Worker threads multiplexing the tenants.
    pub workers: usize,
    /// Session steps a worker runs per scheduling slice before requeueing
    /// the tenant.
    pub steps_per_slice: u32,
    /// Publish each tenant's report/metrics/status every this many slices.
    pub publish_every_slices: u64,
    /// Graceful-shutdown trigger file; `None` = `<spool>/shutdown`.
    pub stop_file: Option<String>,
    /// The hosted tenants, in manifest order.
    pub tenants: Vec<TenantSpec>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            spool: "spool".into(),
            workers: 2,
            steps_per_slice: 8,
            publish_every_slices: 16,
            stop_file: None,
            tenants: Vec::new(),
        }
    }
}

impl Deserialize for ServeConfig {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let Value::Object(fields) = v else {
            return Err(DeError::expected("ServeConfig table", v));
        };
        let mut cfg = ServeConfig::default();
        for (key, val) in fields {
            if matches!(val, Value::Null) {
                continue;
            }
            match key.as_str() {
                "spool" => cfg.spool = String::from_value(val)?,
                "workers" => cfg.workers = usize::from_value(val)?,
                "steps_per_slice" => cfg.steps_per_slice = u32::from_value(val)?,
                "publish_every_slices" => cfg.publish_every_slices = u64::from_value(val)?,
                "stop_file" => cfg.stop_file = Some(String::from_value(val)?),
                "tenants" => {
                    let Value::Object(tenants) = val else {
                        return Err(DeError::expected("tenants table", val));
                    };
                    for (name, spec) in tenants {
                        cfg.tenants.push(TenantSpec {
                            name: name.clone(),
                            run: RunConfig::from_value(spec)?,
                        });
                    }
                }
                other => {
                    return Err(DeError::msg(format!("unknown ServeConfig key {other:?}")));
                }
            }
        }
        Ok(cfg)
    }
}

impl ServeConfig {
    /// Parses a daemon manifest (`[tenants.<name>]` sections).
    pub fn from_toml_str(text: &str) -> Result<ServeConfig, String> {
        let value = toml::parse(text)?;
        ServeConfig::from_value(&value).map_err(|e| e.to_string())
    }

    /// Validates the manifest: at least one tenant, unique directory-safe
    /// names, per-tenant run validity, no `stop_after` resume-test knobs.
    pub fn validate(&self) -> Result<(), String> {
        if self.tenants.is_empty() {
            return Err("no tenants configured".into());
        }
        if self.workers == 0 {
            return Err("workers must be at least 1".into());
        }
        if self.steps_per_slice == 0 {
            return Err("steps_per_slice must be at least 1".into());
        }
        let mut seen = std::collections::BTreeSet::new();
        for t in &self.tenants {
            if t.name.is_empty()
                || !t
                    .name
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || "._-".contains(c))
            {
                return Err(format!(
                    "tenant name {:?} must be non-empty [A-Za-z0-9._-]",
                    t.name
                ));
            }
            if !seen.insert(&t.name) {
                return Err(format!("duplicate tenant name {:?}", t.name));
            }
            t.run
                .validate()
                .map_err(|e| format!("tenant {:?}: {e}", t.name))?;
            if t.run.stop_after.is_some() {
                return Err(format!(
                    "tenant {:?}: stop_after is a resume-test knob, not valid under serve",
                    t.name
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_config_defaults_match_cli_defaults() {
        let cfg = RunConfig::from_toml_str("trace = \"t.l6tr\"\n").unwrap();
        assert_eq!(cfg.agg, 64);
        assert_eq!(cfg.min_dsts, 100);
        assert_eq!(cfg.timeout_secs, 3_600);
        assert_eq!(cfg.batch, lumen6_detect::DEFAULT_SESSION_BATCH);
        assert_eq!(cfg.checkpoint_every, 100_000);
        assert_eq!(cfg.seed, 42);
        assert!((cfg.intensity - 1.0).abs() < f64::EPSILON);
        assert!(cfg.validate().is_ok());
        let det = cfg.detector_config();
        assert_eq!(det, ScanDetectorConfig::default());
        assert!(matches!(cfg.backend(), Backend::Sharded(_)));
    }

    #[test]
    fn unknown_key_is_rejected_with_its_name() {
        let err = RunConfig::from_toml_str("trace = \"t\"\nmin_dst = 5\n").unwrap_err();
        assert!(err.contains("min_dst"), "{err}");
    }

    #[test]
    fn source_exclusivity_is_validated() {
        let none = RunConfig::default();
        assert!(none.validate().unwrap_err().contains("no ingest source"));
        let both = RunConfig {
            trace: Some("a".into()),
            fused: true,
            ..Default::default()
        };
        assert!(both.validate().unwrap_err().contains("mutually exclusive"));
    }

    #[test]
    fn backend_resolution_order() {
        let seq = RunConfig {
            sequential: true,
            threads: 4,
            ..Default::default()
        };
        assert_eq!(seq.backend(), Backend::Sequential);
        let pinned = RunConfig {
            threads: 3,
            ..Default::default()
        };
        assert_eq!(
            pinned.backend(),
            Backend::Sharded(ShardPlan::with_shards(3))
        );
    }

    #[test]
    fn session_config_maps_units_and_policy() {
        let cfg = RunConfig {
            trace: Some("t".into()),
            watermark_secs: 5,
            checkpoint: Some("/tmp/x.l6ck".into()),
            checkpoint_every: 7,
            flush_idle_secs: 2,
            strict: true,
            batch: 9,
            ..Default::default()
        };
        let s = cfg.session_config();
        assert_eq!(s.watermark_ms, 5_000);
        assert_eq!(s.flush_idle_every_ms, 2_000);
        assert!(s.strict);
        assert_eq!(s.batch, 9);
        let p = s.checkpoint.unwrap();
        assert_eq!(p.path, std::path::PathBuf::from("/tmp/x.l6ck"));
        assert_eq!(p.every_records, 7);
        assert_eq!(p.stop_after, None);
    }

    #[test]
    fn serve_manifest_parses_tenant_sections_in_order() {
        let cfg = ServeConfig::from_toml_str(
            "spool = \"run/spool\"\n\
             workers = 3\n\
             [tenants.alpha]\n\
             trace = \"a.l6tr\"\n\
             min_dsts = 50\n\
             [tenants.beta]\n\
             fused = true\n\
             small = true\n\
             days = 4\n",
        )
        .unwrap();
        assert_eq!(cfg.spool, "run/spool");
        assert_eq!(cfg.workers, 3);
        let names: Vec<&str> = cfg.tenants.iter().map(|t| t.name.as_str()).collect();
        assert_eq!(names, ["alpha", "beta"]);
        assert_eq!(cfg.tenants[0].run.min_dsts, 50);
        assert_eq!(cfg.tenants[1].run.days, Some(4));
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn serve_validation_rejects_bad_manifests() {
        let empty = ServeConfig::default();
        assert!(empty.validate().unwrap_err().contains("no tenants"));

        let mut dup = ServeConfig::default();
        let run = RunConfig {
            fused: true,
            ..Default::default()
        };
        dup.tenants.push(TenantSpec {
            name: "a".into(),
            run: run.clone(),
        });
        dup.tenants.push(TenantSpec {
            name: "a".into(),
            run: run.clone(),
        });
        assert!(dup.validate().unwrap_err().contains("duplicate"));

        let mut bad_name = ServeConfig::default();
        bad_name.tenants.push(TenantSpec {
            name: "a/b".into(),
            run: run.clone(),
        });
        assert!(bad_name.validate().unwrap_err().contains("a/b"));

        let mut stopper = ServeConfig::default();
        stopper.tenants.push(TenantSpec {
            name: "s".into(),
            run: RunConfig {
                checkpoint: Some("c".into()),
                stop_after: Some(1),
                ..run
            },
        });
        assert!(stopper.validate().unwrap_err().contains("stop_after"));
    }

    #[test]
    fn gen_threads_parses_and_is_fused_only() {
        let cfg = RunConfig::from_toml_str("fused = true\ngen_threads = 4\n").unwrap();
        assert_eq!(cfg.gen_threads, 4);
        assert!(cfg.validate().is_ok());
        let auto = RunConfig::from_toml_str("fused = true\ngen_threads = 0\n").unwrap();
        assert!(auto.validate().is_ok());
        let bad = RunConfig::from_toml_str("trace = \"t\"\ngen_threads = 4\n").unwrap();
        assert!(bad.validate().unwrap_err().contains("gen_threads"));
    }

    #[test]
    fn run_config_round_trips_through_serialize() {
        let cfg = RunConfig {
            tail: Some("x.l6tr".into()),
            sketch_precision: Some(12),
            days: Some(9),
            stop_after: Some(2),
            checkpoint: Some("c.l6ck".into()),
            ..Default::default()
        };
        let back = RunConfig::from_value(&cfg.to_value()).unwrap();
        assert_eq!(back, cfg);
    }
}
