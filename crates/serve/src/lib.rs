//! `lumen6-serve` — the multi-tenant detection daemon.
//!
//! The `lumen6 detect` command runs one detection session over one trace
//! and exits. An operator watching several vantage points wants the
//! opposite shape: a single long-running process hosting many concurrent
//! *tenants* — live tailed feeds, bulk replays, and synthetic fused
//! streams side by side — each with its own detector configuration,
//! watermark, quarantine accounting, checkpoint file, and periodically
//! published report, and all of them recoverable after a crash.
//!
//! This crate provides that runtime in three layers:
//!
//! - [`toml`] — a minimal TOML-subset parser (the build vendors no TOML
//!   crate) producing `serde` values.
//! - [`config`] — [`RunConfig`], the single-run configuration shared with
//!   the `detect` CLI (`--config FILE`), and [`ServeConfig`], the daemon
//!   manifest mapping tenant names to runs.
//! - [`daemon`] — the [`Daemon`] itself: a fixed worker pool multiplexing
//!   re-entrant [`lumen6_detect::Session::step`] calls across tenants,
//!   spool publication, stop-file graceful shutdown, and checkpoint-based
//!   crash recovery.
//!
//! See `DESIGN.md` ("Multi-tenant runtime") for the scheduling and
//! recovery invariants.

#![warn(missing_docs)]

pub mod config;
pub mod daemon;
pub mod toml;

pub use config::{RunConfig, ServeConfig, TenantSpec};
pub use daemon::{Daemon, DaemonSummary, ServeError, TenantState, TenantStatus};
