//! Process-wide pipeline observability: named counters, gauges, and
//! log₂-bucketed histograms behind a [`MetricsRegistry`], plus a
//! [`StageTimer`] span guard and a serializable [`MetricsSnapshot`].
//!
//! The workspace is offline/vendored, so this crate is dependency-free by
//! design: plain `std` atomics, no `tracing`/`metrics`. Hot paths hold
//! cloned handles ([`Counter`], [`Gauge`], [`Histogram`]) — an increment is
//! one relaxed atomic RMW; the registry lock is only taken on lookup and
//! snapshot. Instrumented readers and detectors typically accumulate plain
//! `u64`s locally and flush once per refill/finish, so per-record overhead
//! is zero atomics.
//!
//! # Naming scheme
//!
//! Metric names are dotted lowercase paths, `crate.subsystem.metric`
//! (e.g. `trace.codec.records_decoded`, `detect.parallel.shard.3.packets_routed`).
//! These names are a **stable interface**: BENCH_*.json tooling and the CI
//! schema checker key on them. Rename only with a migration note in
//! DESIGN.md.
//!
//! ```
//! use lumen6_obs::MetricsRegistry;
//! let reg = MetricsRegistry::new();
//! let c = reg.counter("demo.widgets_built");
//! c.add(3);
//! let snap = reg.snapshot();
//! assert_eq!(snap.counters["demo.widgets_built"], 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Number of histogram buckets: one per possible bit length of a `u64`
/// value (0, 1, 2, 4, 8, … 2⁶³..) — bucket `i` holds values of bit length
/// `i`, i.e. `2^(i-1) <= v < 2^i`, with bucket 0 reserved for zero.
pub const HIST_BUCKETS: usize = 65;

/// A monotonically increasing counter handle. Cloning is cheap (an `Arc`);
/// all clones address the same underlying value.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A settable signed gauge handle.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the gauge to `v`.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `d` (may be negative).
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramCore {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl HistogramCore {
    fn new() -> Self {
        HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// Bucket index of a value: its bit length (0 for 0, 64 for `>= 2^63`).
#[inline]
fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `i` (`2^i - 1`; `u64::MAX` for the last).
fn bucket_le(i: usize) -> u64 {
    if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A log₂-bucketed histogram handle (65 buckets covering the full `u64`
/// range). Records are lock-free relaxed atomic adds; `count`/`sum`/bucket
/// totals are each exact under concurrency, though a snapshot taken while
/// writers are active may observe them mid-update relative to each other.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    /// Records one value.
    #[inline]
    pub fn record(&self, v: u64) {
        self.0.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Records a duration in whole microseconds.
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(u64::try_from(d.as_micros()).unwrap_or(u64::MAX));
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }
}

/// An RAII span guard: measures wall time from construction and records it
/// (in microseconds) into a [`Histogram`] when dropped or [`stop`]ped.
///
/// [`stop`]: StageTimer::stop
///
/// ```
/// use lumen6_obs::MetricsRegistry;
/// let reg = MetricsRegistry::new();
/// {
///     let _t = lumen6_obs::StageTimer::new(reg.histogram("demo.stage_us"));
///     // ... timed work ...
/// }
/// assert_eq!(reg.snapshot().histograms["demo.stage_us"].count, 1);
/// ```
#[derive(Debug)]
pub struct StageTimer {
    hist: Option<Histogram>,
    start: Instant,
}

impl StageTimer {
    /// Starts timing into the given histogram.
    pub fn new(hist: Histogram) -> Self {
        StageTimer {
            hist: Some(hist),
            start: Instant::now(),
        }
    }

    /// Stops early and returns the elapsed microseconds just recorded.
    pub fn stop(mut self) -> u64 {
        let us = u64::try_from(self.start.elapsed().as_micros()).unwrap_or(u64::MAX);
        if let Some(h) = self.hist.take() {
            h.record(us);
        }
        us
    }
}

impl Drop for StageTimer {
    fn drop(&mut self) {
        if let Some(h) = self.hist.take() {
            h.record_duration(self.start.elapsed());
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, Arc<AtomicU64>>,
    gauges: BTreeMap<String, Arc<AtomicI64>>,
    histograms: BTreeMap<String, Arc<HistogramCore>>,
}

/// A registry of named metrics. One process-wide instance is reachable via
/// [`MetricsRegistry::global`]; independent instances (for tests) via
/// [`MetricsRegistry::new`].
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<Inner>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// The process-wide registry all built-in instrumentation reports to.
    pub fn global() -> &'static MetricsRegistry {
        static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
        GLOBAL.get_or_init(MetricsRegistry::new)
    }

    /// Returns (creating on first use) the counter with this name.
    ///
    /// Lock poisoning is recovered throughout this registry: the guarded
    /// state is plain maps of atomic handles with no multi-step invariants,
    /// so a panic elsewhere must not take observability down with it.
    pub fn counter(&self, name: &str) -> Counter {
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        Counter(Arc::clone(
            inner.counters.entry(name.to_string()).or_default(),
        ))
    }

    /// Returns (creating on first use) the gauge with this name.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        Gauge(Arc::clone(
            inner.gauges.entry(name.to_string()).or_default(),
        ))
    }

    /// Returns (creating on first use) the histogram with this name.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        Histogram(Arc::clone(
            inner
                .histograms
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(HistogramCore::new())),
        ))
    }

    /// Starts a [`StageTimer`] recording into the named histogram.
    pub fn stage(&self, name: &str) -> StageTimer {
        StageTimer::new(self.histogram(name))
    }

    /// Takes a point-in-time snapshot of every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, h)| {
                    let buckets = h
                        .buckets
                        .iter()
                        .enumerate()
                        .filter_map(|(i, b)| {
                            let count = b.load(Ordering::Relaxed);
                            (count > 0).then_some(BucketCount {
                                le: bucket_le(i),
                                count,
                            })
                        })
                        .collect();
                    (
                        k.clone(),
                        HistogramSnapshot {
                            count: h.count.load(Ordering::Relaxed),
                            sum: h.sum.load(Ordering::Relaxed),
                            buckets,
                        },
                    )
                })
                .collect(),
        }
    }

    /// Zeroes every registered metric (handles stay valid). Test helper —
    /// concurrent writers may land increments before or after the sweep.
    pub fn reset(&self) {
        let inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        for c in inner.counters.values() {
            c.store(0, Ordering::Relaxed);
        }
        for g in inner.gauges.values() {
            g.store(0, Ordering::Relaxed);
        }
        for h in inner.histograms.values() {
            for b in &h.buckets {
                b.store(0, Ordering::Relaxed);
            }
            h.count.store(0, Ordering::Relaxed);
            h.sum.store(0, Ordering::Relaxed);
        }
    }
}

/// One non-empty histogram bucket: `count` values `<= le` (and above the
/// previous bucket's bound).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BucketCount {
    /// Inclusive upper bound of the bucket.
    pub le: u64,
    /// Values recorded into the bucket.
    pub count: u64,
}

/// Snapshot of one histogram.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Total values recorded.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Non-empty buckets, ascending by `le`.
    pub buckets: Vec<BucketCount>,
}

impl HistogramSnapshot {
    /// Mean recorded value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// A point-in-time, serde-serializable view of a [`MetricsRegistry`].
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// The change since `baseline`: counters and histogram buckets are
    /// subtracted (saturating; a metric absent from the baseline counts
    /// from zero), gauges keep their current value. Use this to scope a
    /// process-wide registry to one command invocation.
    pub fn delta(&self, baseline: &MetricsSnapshot) -> MetricsSnapshot {
        let counters = self
            .counters
            .iter()
            .map(|(k, &v)| {
                (
                    k.clone(),
                    v.saturating_sub(baseline.counters.get(k).copied().unwrap_or(0)),
                )
            })
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(k, h)| {
                let base: BTreeMap<u64, u64> = baseline
                    .histograms
                    .get(k)
                    .map(|b| b.buckets.iter().map(|bc| (bc.le, bc.count)).collect())
                    .unwrap_or_default();
                let (base_count, base_sum) = baseline
                    .histograms
                    .get(k)
                    .map(|b| (b.count, b.sum))
                    .unwrap_or((0, 0));
                let buckets = h
                    .buckets
                    .iter()
                    .filter_map(|bc| {
                        let count = bc
                            .count
                            .saturating_sub(base.get(&bc.le).copied().unwrap_or(0));
                        (count > 0).then_some(BucketCount { le: bc.le, count })
                    })
                    .collect();
                (
                    k.clone(),
                    HistogramSnapshot {
                        count: h.count.saturating_sub(base_count),
                        sum: h.sum.saturating_sub(base_sum),
                        buckets,
                    },
                )
            })
            .collect();
        MetricsSnapshot {
            counters,
            gauges: self.gauges.clone(),
            histograms,
        }
    }

    /// Sum of all counters whose name starts with `prefix` and ends with
    /// `suffix` (either may be empty). E.g.
    /// `counter_sum("detect.parallel.shard.", ".packets_routed")` totals
    /// the per-shard routing counters.
    pub fn counter_sum(&self, prefix: &str, suffix: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| k.starts_with(prefix) && k.ends_with(suffix))
            .map(|(_, &v)| v)
            .sum()
    }

    /// Renders a compact human-readable summary (counters and gauges with
    /// their values; histograms with count / mean / upper bound), dropping
    /// zero-valued counters to keep the table focused.
    pub fn summary_table(&self) -> String {
        let mut t = lumen6_report::Table::new(vec!["metric", "value", "count", "mean", "max≤"]);
        for c in 1..=4 {
            t.align_right(c);
        }
        for (name, &v) in &self.counters {
            if v > 0 {
                t.row(vec![name.clone(), v.to_string()]);
            }
        }
        for (name, &v) in &self.gauges {
            t.row(vec![name.clone(), v.to_string()]);
        }
        for (name, h) in &self.histograms {
            t.row(vec![
                name.clone(),
                h.sum.to_string(),
                h.count.to_string(),
                format!("{:.1}", h.mean()),
                h.buckets
                    .last()
                    .map_or_else(String::new, |b| b.le.to_string()),
            ]);
        }
        t.render()
    }
}

/// The `crate.subsystem.metric` name scheme: at least two non-empty
/// dot-separated segments of `[a-z0-9_]`. This is the single source of
/// truth — [`validate`] applies it to runtime snapshots and the
/// `lumen6-analyzer` L005 lint applies it to metric-name literals at
/// lint time.
pub fn valid_metric_name(n: &str) -> bool {
    !n.is_empty()
        && n.split('.').count() >= 2
        && n.split('.').all(|seg| {
            !seg.is_empty()
                && seg
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        })
}

/// Validates snapshot invariants (used by the `check_metrics` CI binary and
/// reusable from tests). Returns every violated rule.
pub fn validate(snap: &MetricsSnapshot) -> Vec<String> {
    let mut errs = Vec::new();
    for name in snap
        .counters
        .keys()
        .chain(snap.gauges.keys())
        .chain(snap.histograms.keys())
    {
        if !valid_metric_name(name) {
            errs.push(format!(
                "metric name {name:?} violates the crate.subsystem.metric scheme"
            ));
        }
    }
    for (name, h) in &snap.histograms {
        let bucket_total: u64 = h.buckets.iter().map(|b| b.count).sum();
        if bucket_total != h.count {
            errs.push(format!(
                "histogram {name}: bucket counts sum to {bucket_total}, count says {}",
                h.count
            ));
        }
        if !h.buckets.windows(2).all(|w| w[0].le < w[1].le) {
            errs.push(format!("histogram {name}: bucket bounds not increasing"));
        }
        if h.count == 0 && h.sum != 0 {
            errs.push(format!("histogram {name}: empty but sum = {}", h.sum));
        }
    }
    errs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_roundtrip() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("a.b.c");
        c.inc();
        c.add(9);
        assert_eq!(c.get(), 10);
        // Same name → same counter.
        assert_eq!(reg.counter("a.b.c").get(), 10);
        let g = reg.gauge("a.b.g");
        g.set(-3);
        g.add(1);
        assert_eq!(g.get(), -2);
        let snap = reg.snapshot();
        assert_eq!(snap.counters["a.b.c"], 10);
        assert_eq!(snap.gauges["a.b.g"], -2);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("t.h");
        for v in [0u64, 1, 2, 3, 4, 7, 8, u64::MAX] {
            h.record(v);
        }
        let snap = &reg.snapshot().histograms["t.h"];
        assert_eq!(snap.count, 8);
        assert_eq!(snap.sum, 0u64.wrapping_add(25).wrapping_add(u64::MAX));
        let by_le: BTreeMap<u64, u64> = snap.buckets.iter().map(|b| (b.le, b.count)).collect();
        assert_eq!(by_le[&0], 1); // 0
        assert_eq!(by_le[&1], 1); // 1
        assert_eq!(by_le[&3], 2); // 2, 3
        assert_eq!(by_le[&7], 2); // 4, 7
        assert_eq!(by_le[&15], 1); // 8
        assert_eq!(by_le[&u64::MAX], 1);
        assert!(validate(&reg.snapshot()).is_empty());
    }

    #[test]
    fn stage_timer_records_on_drop_and_stop() {
        let reg = MetricsRegistry::new();
        {
            let _t = reg.stage("t.stage_us");
        }
        let us = StageTimer::new(reg.histogram("t.stage_us")).stop();
        let snap = &reg.snapshot().histograms["t.stage_us"];
        assert_eq!(snap.count, 2);
        assert!(snap.sum >= us);
    }

    #[test]
    fn delta_subtracts_counters_and_buckets() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("d.c");
        let h = reg.histogram("d.h");
        c.add(5);
        h.record(3);
        let base = reg.snapshot();
        c.add(2);
        h.record(3);
        h.record(100);
        let d = reg.snapshot().delta(&base);
        assert_eq!(d.counters["d.c"], 2);
        assert_eq!(d.histograms["d.h"].count, 2);
        assert_eq!(d.histograms["d.h"].sum, 103);
        let by_le: BTreeMap<u64, u64> = d.histograms["d.h"]
            .buckets
            .iter()
            .map(|b| (b.le, b.count))
            .collect();
        assert_eq!(by_le[&3], 1);
        assert_eq!(by_le[&127], 1);
        assert!(validate(&d).is_empty());
    }

    #[test]
    fn counter_sum_matches_prefix_suffix() {
        let reg = MetricsRegistry::new();
        reg.counter("p.shard.0.routed").add(3);
        reg.counter("p.shard.1.routed").add(4);
        reg.counter("p.shard.1.other").add(9);
        let snap = reg.snapshot();
        assert_eq!(snap.counter_sum("p.shard.", ".routed"), 7);
        assert_eq!(snap.counter_sum("", ""), 16);
    }

    #[test]
    fn reset_zeroes_but_keeps_handles() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("r.c");
        c.add(7);
        reg.reset();
        assert_eq!(c.get(), 0);
        c.inc();
        assert_eq!(reg.snapshot().counters["r.c"], 1);
    }

    #[test]
    fn validate_flags_bad_names() {
        let mut snap = MetricsSnapshot::default();
        snap.counters.insert("NoDots".into(), 1);
        snap.counters.insert("ok.name".into(), 1);
        snap.counters.insert("Bad.Case".into(), 1);
        let errs = validate(&snap);
        assert_eq!(errs.len(), 2, "{errs:?}");
    }

    #[test]
    fn summary_table_renders_nonzero_metrics() {
        let reg = MetricsRegistry::new();
        reg.counter("s.zero");
        reg.counter("s.nonzero").add(5);
        reg.histogram("s.hist_us").record(10);
        let text = reg.snapshot().summary_table();
        assert!(text.contains("s.nonzero"));
        assert!(text.contains("s.hist_us"));
        assert!(!text.contains("s.zero"));
    }
}
