//! CI schema checker for `--metrics-out` snapshots.
//!
//! Usage: `check_metrics FILE.json [--expect-records N]`
//!
//! Validates the snapshot invariants (name scheme, histogram bucket
//! consistency) and, with `--expect-records N`, asserts the sharded
//! detection pipeline accounted for every input record: per-shard
//! `detect.parallel.shard.*.packets_routed` sums to N and every
//! `trace.codec.errors.*` counter is zero. Exits nonzero on any failure.

use lumen6_obs::MetricsSnapshot;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(path) = args.next() else {
        eprintln!("usage: check_metrics FILE.json [--expect-records N]");
        return ExitCode::from(2);
    };
    let mut expect_records: Option<u64> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--expect-records" => {
                let Some(v) = args.next().and_then(|s| s.parse().ok()) else {
                    eprintln!("--expect-records needs an integer");
                    return ExitCode::from(2);
                };
                expect_records = Some(v);
            }
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::from(2);
            }
        }
    }

    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let snap: MetricsSnapshot = match serde_json::from_str(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{path}: not a MetricsSnapshot: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut errs = lumen6_obs::validate(&snap);
    if let Some(n) = expect_records {
        let routed = snap.counter_sum("detect.parallel.shard.", ".packets_routed");
        if routed != n {
            errs.push(format!(
                "per-shard packets_routed sums to {routed}, expected {n}"
            ));
        }
        let decode_errs = snap.counter_sum("trace.codec.errors.", "");
        if decode_errs != 0 {
            errs.push(format!("{decode_errs} decode errors recorded, expected 0"));
        }
    }

    if errs.is_empty() {
        println!(
            "{path}: ok ({} counters, {} gauges, {} histograms)",
            snap.counters.len(),
            snap.gauges.len(),
            snap.histograms.len()
        );
        ExitCode::SUCCESS
    } else {
        for e in &errs {
            eprintln!("{path}: {e}");
        }
        ExitCode::FAILURE
    }
}
