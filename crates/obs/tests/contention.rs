//! Concurrency and determinism tests for the metrics registry.

use lumen6_obs::{MetricsRegistry, MetricsSnapshot};
use std::sync::Arc;
use std::thread;

#[test]
fn counters_exact_under_thread_contention() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 10_000;
    let reg = Arc::new(MetricsRegistry::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let reg = Arc::clone(&reg);
            thread::spawn(move || {
                let c = reg.counter("contend.shared");
                for _ in 0..PER_THREAD {
                    c.inc();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(
        reg.snapshot().counters["contend.shared"],
        THREADS as u64 * PER_THREAD
    );
}

#[test]
fn histograms_exact_under_thread_contention() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 5_000;
    let reg = Arc::new(MetricsRegistry::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let reg = Arc::clone(&reg);
            thread::spawn(move || {
                let h = reg.histogram("contend.hist");
                for i in 0..PER_THREAD {
                    // Values spread across many buckets, deterministic per thread.
                    h.record((t as u64 * PER_THREAD + i) % 1024);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let snap = reg.snapshot();
    let hist = &snap.histograms["contend.hist"];
    let total = THREADS as u64 * PER_THREAD;
    assert_eq!(hist.count, total);
    assert_eq!(hist.buckets.iter().map(|b| b.count).sum::<u64>(), total);
    let expected_sum: u64 = (0..THREADS as u64)
        .flat_map(|t| (0..PER_THREAD).map(move |i| (t * PER_THREAD + i) % 1024))
        .sum();
    assert_eq!(hist.sum, expected_sum);
    assert!(lumen6_obs::validate(&snap).is_empty());
}

#[test]
fn snapshot_is_deterministic_and_roundtrips_json() {
    // Two registries fed identical data in different insertion orders must
    // produce identical snapshots and identical JSON bytes.
    let a = MetricsRegistry::new();
    let b = MetricsRegistry::new();
    a.counter("z.last").add(1);
    a.counter("a.first").add(2);
    a.histogram("m.hist").record(7);
    b.histogram("m.hist").record(7);
    b.counter("a.first").add(2);
    b.counter("z.last").add(1);
    let sa = a.snapshot();
    let sb = b.snapshot();
    assert_eq!(sa, sb);
    let ja = serde_json::to_string_pretty(&sa).unwrap();
    let jb = serde_json::to_string_pretty(&sb).unwrap();
    assert_eq!(ja, jb);
    let back: MetricsSnapshot = serde_json::from_str(&ja).unwrap();
    assert_eq!(back, sa);
}
