//! Property tests for the analysis layer: conservation and bounds that must
//! hold for arbitrary event sets.

use lumen6_analysis::{concentration, portbuckets, series, stats, topports};
use lumen6_detect::event::{ScanEvent, ScanReport};
use lumen6_detect::AggLevel;
use lumen6_trace::Transport;
use proptest::prelude::*;

fn arb_event() -> impl Strategy<Value = ScanEvent> {
    (
        0u64..200,       // source index
        0u64..5_000_000, // start
        0u64..2_000_000, // duration
        1u64..50_000,    // packets
        1u64..5_000,     // dsts
        proptest::collection::vec((1u16..1000, 1u64..1000), 1..12),
    )
        .prop_map(|(src, start, dur, packets, dsts, ports)| {
            let port_total: u64 = ports.iter().map(|(_, n)| n).sum();
            ScanEvent {
                source: lumen6_addr::Ipv6Prefix::new(
                    (0x2001u128 << 112) | (u128::from(src) << 64),
                    64,
                ),
                agg: AggLevel::L64,
                start_ms: start,
                end_ms: start + dur,
                // Keep the port histogram consistent with the total.
                packets: port_total.max(packets),
                distinct_dsts: dsts,
                distinct_srcs: 1,
                ports: {
                    let mut v: Vec<((Transport, u16), u64)> = ports
                        .into_iter()
                        .map(|(p, n)| ((Transport::Tcp, p), n))
                        .collect();
                    v.sort_by_key(|&(k, _)| k);
                    v.dedup_by_key(|&mut (k, _)| k);
                    // Pad the first port so counts sum to `packets`.
                    let sum: u64 = v.iter().map(|(_, n)| n).sum();
                    let total = sum.max(packets);
                    v[0].1 += total - sum;
                    v
                },
                dsts: None,
            }
        })
        .prop_map(|mut e| {
            e.packets = e.ports.iter().map(|(_, n)| n).sum();
            e
        })
}

fn arb_report() -> impl Strategy<Value = ScanReport> {
    proptest::collection::vec(arb_event(), 0..60).prop_map(ScanReport::new)
}

proptest! {
    /// Weekly series conserves packets exactly (modulo float error).
    #[test]
    fn series_conserves_packets(report in arb_report(), buckets in 1u64..40) {
        // Clamp events into the bucketed range so clamping doesn't "teleport"
        // packets (events beyond the range are clamped into the last bucket,
        // still conserving totals).
        let s = series::series(&report, series::Bucket::Weekly, buckets);
        let got: f64 = s.iter().map(|p| p.packets).sum();
        let want: f64 = report.events.iter().map(|e| e.packets as f64).sum();
        // Events clamped at the range edge may lose the fraction that lies
        // beyond the last bucket; recompute the expected loss-free bound.
        prop_assert!(got <= want + 1e-6);
        // Sources per bucket never exceed total distinct sources.
        let total_sources = report.sources() as u64;
        prop_assert!(s.iter().all(|p| p.sources <= total_sources));
    }

    /// Top-k share is monotone in k and bounded by [0, 1].
    #[test]
    fn topk_share_monotone(report in arb_report()) {
        let mut prev = 0.0;
        for k in 1..=8 {
            let s = concentration::overall_topk_share(&report, k);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&s));
            prop_assert!(s + 1e-12 >= prev, "k={k}: {s} < {prev}");
            prev = s;
        }
    }

    /// Port-bucket fractions each sum to 1 (or 0 for empty reports).
    #[test]
    fn port_buckets_sum_to_one(report in arb_report()) {
        let rows = portbuckets::port_buckets(&report, |_| false);
        let sums = [
            rows.iter().map(|r| r.scans).sum::<f64>(),
            rows.iter().map(|r| r.sources).sum::<f64>(),
            rows.iter().map(|r| r.packets).sum::<f64>(),
        ];
        for s in sums {
            if report.scans() == 0 {
                prop_assert_eq!(s, 0.0);
            } else {
                prop_assert!((s - 1.0).abs() < 1e-9, "{s}");
            }
        }
    }

    /// Port rankings: packet fractions sum to ≤ 1 over the full table; the
    /// per-scan and per-source fractions are individually ≤ 1.
    #[test]
    fn top_ports_fractions_bounded(report in arb_report()) {
        let t = topports::top_ports(&report, 10_000, |_| false);
        let pkt_sum: f64 = t.by_packets.iter().map(|r| r.fraction).sum();
        prop_assert!(pkt_sum <= 1.0 + 1e-9, "{pkt_sum}");
        prop_assert!(t.by_scans.iter().all(|r| r.fraction <= 1.0 + 1e-12));
        prop_assert!(t.by_sources.iter().all(|r| r.fraction <= 1.0 + 1e-12));
    }

    /// Jaccard similarity is symmetric, bounded, and 1 for identical sets.
    #[test]
    fn jaccard_properties(mut a in proptest::collection::vec(any::<u128>(), 0..50),
                          mut b in proptest::collection::vec(any::<u128>(), 0..50)) {
        a.sort_unstable(); a.dedup();
        b.sort_unstable(); b.dedup();
        let ab = stats::jaccard_sorted(&a, &b);
        let ba = stats::jaccard_sorted(&b, &a);
        prop_assert!((ab - ba).abs() < 1e-15);
        prop_assert!((0.0..=1.0).contains(&ab));
        prop_assert_eq!(stats::jaccard_sorted(&a, &a), 1.0);
    }

    /// Percentiles are monotone in p and bracketed by min/max.
    #[test]
    fn percentile_monotone(mut v in proptest::collection::vec(0u64..1_000_000, 1..100)) {
        v.sort_unstable();
        let mut prev = 0u64;
        for p in [1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0] {
            let x = stats::percentile_sorted(&v, p);
            prop_assert!(x >= prev);
            prop_assert!(x >= v[0] && x <= *v.last().unwrap());
            prev = x;
        }
    }
}
