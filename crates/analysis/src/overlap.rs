//! Hitlist overlap and target-set similarity (Appendices A.2 and A.4).

use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Overlap of a target set with a hitlist.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HitlistOverlap {
    /// Distinct targets examined.
    pub targets: u64,
    /// Targets also present in the hitlist.
    pub in_hitlist: u64,
}

impl HitlistOverlap {
    /// Fraction of targets found in the hitlist (the paper: ≈0 on most
    /// days, 99.2% on 2021-05-27 for AS#1).
    pub fn fraction(&self) -> f64 {
        crate::stats::share(self.in_hitlist, self.targets)
    }
}

/// Computes the overlap of (deduplicated) `targets` with `hitlist`.
pub fn hitlist_overlap<'a, I>(targets: I, hitlist: &HashSet<u128>) -> HitlistOverlap
where
    I: IntoIterator<Item = &'a u128>,
{
    let distinct: HashSet<u128> = targets.into_iter().copied().collect();
    let in_hitlist = distinct.iter().filter(|t| hitlist.contains(t)).count() as u64;
    HitlistOverlap {
        targets: distinct.len() as u64,
        in_hitlist,
    }
}

/// Target-set similarity between two sources (Appendix A.4): Jaccard index
/// over distinct targets. The paper measures 78% for the AS#6 pair.
pub fn target_similarity(a: &[u128], b: &[u128]) -> f64 {
    let mut sa: Vec<u128> = a.to_vec();
    let mut sb: Vec<u128> = b.to_vec();
    sa.sort_unstable();
    sa.dedup();
    sb.sort_unstable();
    sb.dedup();
    crate::stats::jaccard_sorted(&sa, &sb)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlap_counts_distinct() {
        let hitlist: HashSet<u128> = (0..100u128).collect();
        let targets = [1u128, 1, 2, 3, 200];
        let o = hitlist_overlap(targets.iter(), &hitlist);
        assert_eq!(o.targets, 4);
        assert_eq!(o.in_hitlist, 3);
        assert!((o.fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_targets() {
        let hitlist: HashSet<u128> = HashSet::new();
        let o = hitlist_overlap([].iter(), &hitlist);
        assert_eq!(o.fraction(), 0.0);
    }

    #[test]
    fn similarity_with_duplicates() {
        let a = vec![1u128, 2, 3, 3, 3];
        let b = vec![2u128, 3, 4];
        // {1,2,3} vs {2,3,4}: 2/4.
        assert!((target_similarity(&a, &b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn identical_sets_full_similarity() {
        let a = vec![5u128, 6, 7];
        assert_eq!(target_similarity(&a, &a), 1.0);
    }
}
