//! The Fig. 1 heatmap: per-source (destinations targeted × packets logged).
//!
//! Computed over *raw* firewall logs (before artifact filtering and scan
//! detection), grouped by source /64 — the paper's first-order view of who
//! contacts the telescope: a dense cluster of low-destination sources near
//! the origin, and a small number of sources targeting many destinations.

use lumen6_detect::AggLevel;
use lumen6_trace::PacketRecord;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Per-source raw statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SourcePoint {
    /// Distinct destination addresses contacted.
    pub dsts: u64,
    /// Packets logged.
    pub packets: u64,
}

/// Computes per-source statistics over a trace slice at the given
/// aggregation (Fig. 1 uses /64).
pub fn source_points(records: &[PacketRecord], agg: AggLevel) -> Vec<SourcePoint> {
    let mut map: HashMap<u128, (HashSet<u128>, u64)> = HashMap::new();
    for r in records {
        let s = agg.source_of(r.src).bits();
        let e = map.entry(s).or_default();
        e.0.insert(r.dst);
        e.1 += 1;
    }
    let mut v: Vec<SourcePoint> = map
        .into_values()
        .map(|(d, p)| SourcePoint {
            dsts: d.len() as u64,
            packets: p,
        })
        .collect();
    v.sort_by_key(|p| (p.dsts, p.packets));
    v
}

/// A log-log binned 2-D histogram of source points.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Heatmap {
    /// Number of bins per axis.
    pub bins: usize,
    /// `cells[y][x]` = number of sources in (packet-bin y, dst-bin x).
    pub cells: Vec<Vec<u64>>,
    /// Upper edge (inclusive) of each destination bin.
    pub dst_edges: Vec<u64>,
    /// Upper edge (inclusive) of each packet bin.
    pub pkt_edges: Vec<u64>,
    /// Total sources binned.
    pub sources: u64,
}

impl Heatmap {
    /// Builds a `bins × bins` log₂-binned heatmap.
    ///
    /// The edge sequence 1, 2, 4, … tops out at 65 strictly increasing
    /// values over `u64` (2⁰..2⁶³ plus a final `u64::MAX` catch-all), so
    /// `bins` is capped there — asking for more would only duplicate the
    /// saturated top edge and collapse every high bucket into one. The
    /// `bins` field of the result records the effective count.
    pub fn build(points: &[SourcePoint], bins: usize) -> Heatmap {
        assert!(bins >= 2, "need at least 2 bins");
        let bins = bins.min(65);
        let edges: Vec<u64> = (0..bins)
            .map(|i| if i < 64 { 1u64 << i } else { u64::MAX })
            .collect();
        let mut cells = vec![vec![0u64; bins]; bins];
        let bin_of = |v: u64| -> usize { edges.iter().position(|&e| v <= e).unwrap_or(bins - 1) };
        for p in points {
            cells[bin_of(p.packets)][bin_of(p.dsts.max(1))] += 1;
        }
        Heatmap {
            bins,
            cells,
            dst_edges: edges.clone(),
            pkt_edges: edges,
            sources: points.len() as u64,
        }
    }

    /// Sources in bins whose destination count is at most `dsts` and packet
    /// count at most `packets` — the "cluster near the origin" mass.
    pub fn mass_below(&self, dsts: u64, packets: u64) -> u64 {
        let dx = self
            .dst_edges
            .iter()
            .position(|&e| e >= dsts)
            .unwrap_or(self.bins - 1);
        let py = self
            .pkt_edges
            .iter()
            .position(|&e| e >= packets)
            .unwrap_or(self.bins - 1);
        self.cells[..=py]
            .iter()
            .map(|row| row[..=dx].iter().sum::<u64>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(src: u128, dst: u128) -> PacketRecord {
        PacketRecord::tcp(0, src, dst, 1, 22, 60)
    }

    #[test]
    fn points_group_by_64() {
        let a: u128 = 1 << 64; // /64 A, two /128s
        let records = vec![
            rec(a | 1, 100),
            rec(a | 2, 100),
            rec(a | 2, 200),
            rec(2 << 64, 300), // /64 B
        ];
        let pts = source_points(&records, AggLevel::L64);
        assert_eq!(pts.len(), 2);
        assert_eq!(
            pts[0],
            SourcePoint {
                dsts: 1,
                packets: 1
            }
        );
        assert_eq!(
            pts[1],
            SourcePoint {
                dsts: 2,
                packets: 3
            }
        );
    }

    #[test]
    fn heatmap_bins_and_total() {
        let pts = vec![
            SourcePoint {
                dsts: 1,
                packets: 1,
            },
            SourcePoint {
                dsts: 1,
                packets: 2,
            },
            SourcePoint {
                dsts: 1000,
                packets: 100_000,
            },
        ];
        let h = Heatmap::build(&pts, 20);
        assert_eq!(h.sources, 3);
        let total: u64 = h.cells.iter().flatten().sum();
        assert_eq!(total, 3);
        // The two tiny sources sit at the origin.
        assert_eq!(h.mass_below(2, 2), 2);
        assert_eq!(h.mass_below(1 << 19, u64::MAX >> 1), 3);
    }

    #[test]
    fn origin_cluster_dominates_mixed_population() {
        // 95 tiny sources + 5 heavy scanners: the origin mass is ≥ 95%.
        let mut pts: Vec<SourcePoint> = (0..95)
            .map(|i| SourcePoint {
                dsts: 1 + i % 3,
                packets: 1 + i % 7,
            })
            .collect();
        pts.extend((0..5).map(|_| SourcePoint {
            dsts: 5_000,
            packets: 80_000,
        }));
        let h = Heatmap::build(&pts, 24);
        assert_eq!(h.mass_below(8, 8), 95);
    }

    #[test]
    fn zero_dst_clamped() {
        // Degenerate safety: a point with dsts = 0 (cannot occur from
        // source_points, but the API is total).
        let h = Heatmap::build(
            &[SourcePoint {
                dsts: 0,
                packets: 1,
            }],
            4,
        );
        assert_eq!(h.sources, 1);
    }

    #[test]
    #[should_panic(expected = "at least 2 bins")]
    fn one_bin_rejected() {
        Heatmap::build(&[], 1);
    }

    #[test]
    fn oversized_bin_count_caps_without_duplicate_edges() {
        // bins = 70 used to produce six duplicate u64::MAX edges (from
        // `2u64.saturating_pow(i)` for i >= 64), collapsing every
        // high-magnitude bucket into one. The edge sequence must be
        // strictly increasing and the huge point must land in its own top
        // bucket, distinct from a merely-large one.
        let pts = vec![
            SourcePoint {
                dsts: 1,
                packets: 1,
            },
            SourcePoint {
                dsts: 1 << 40,
                packets: 1 << 40,
            },
            SourcePoint {
                dsts: u64::MAX,
                packets: u64::MAX,
            },
        ];
        let h = Heatmap::build(&pts, 70);
        assert_eq!(h.bins, 65, "bins capped at the number of distinct edges");
        assert_eq!(h.dst_edges.len(), 65);
        assert!(
            h.dst_edges.windows(2).all(|w| w[0] < w[1]),
            "edges strictly increasing"
        );
        assert_eq!(*h.dst_edges.last().unwrap(), u64::MAX);
        let total: u64 = h.cells.iter().flatten().sum();
        assert_eq!(total, 3);
        // The 2^40-sized and u64::MAX-sized sources occupy different cells.
        assert_eq!(h.cells[40][40], 1);
        assert_eq!(h.cells[64][64], 1);
    }
}
