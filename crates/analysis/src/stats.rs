//! Shared statistical helpers.

/// Lower median of a sorted slice; 0-equivalent default for empty input.
pub fn median_sorted<T: Copy + Default>(sorted: &[T]) -> T {
    if sorted.is_empty() {
        T::default()
    } else {
        sorted[(sorted.len() - 1) / 2]
    }
}

/// The p-th percentile (0..=100, nearest-rank) of a sorted slice.
pub fn percentile_sorted<T: Copy + Default>(sorted: &[T], p: f64) -> T {
    if sorted.is_empty() {
        return T::default();
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

/// Fraction `part / whole`, 0 when `whole` is 0.
pub fn share(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        part as f64 / whole as f64
    }
}

/// Jaccard similarity of two sets given as sorted, deduplicated slices.
pub fn jaccard_sorted(a: &[u128], b: &[u128]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let mut i = 0;
    let mut j = 0;
    let mut inter = 0usize;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    let union = a.len() + b.len() - inter;
    inter as f64 / union as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_basics() {
        assert_eq!(median_sorted::<u64>(&[]), 0);
        assert_eq!(median_sorted(&[5u64]), 5);
        assert_eq!(median_sorted(&[1u64, 2]), 1, "lower median");
        assert_eq!(median_sorted(&[1u64, 2, 3]), 2);
        assert_eq!(median_sorted(&[1u64, 2, 3, 4]), 2);
    }

    #[test]
    fn percentile_nearest_rank() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_sorted(&v, 50.0), 50);
        assert_eq!(percentile_sorted(&v, 90.0), 90);
        assert_eq!(percentile_sorted(&v, 100.0), 100);
        assert_eq!(percentile_sorted(&v, 1.0), 1);
        assert_eq!(percentile_sorted::<u64>(&[], 50.0), 0);
    }

    #[test]
    fn share_handles_zero() {
        assert_eq!(share(1, 0), 0.0);
        assert_eq!(share(1, 4), 0.25);
    }

    #[test]
    fn jaccard_cases() {
        assert_eq!(jaccard_sorted(&[], &[]), 1.0);
        assert_eq!(jaccard_sorted(&[1], &[]), 0.0);
        assert_eq!(jaccard_sorted(&[1, 2, 3], &[1, 2, 3]), 1.0);
        assert_eq!(jaccard_sorted(&[1, 2], &[2, 3]), 1.0 / 3.0);
        // The paper's A.4 pair: intersection/union = 78%.
        let a: Vec<u128> = (0..89).collect();
        let b: Vec<u128> = (11..100).collect();
        assert!((jaccard_sorted(&a, &b) - 0.78) < 0.01);
    }
}
