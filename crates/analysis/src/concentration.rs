//! Scan-traffic concentration: top-k source packet shares (Fig. 3, Fig. 6).

use crate::series::{Bucket, SeriesPoint};
use lumen6_addr::Ipv6Prefix;
use lumen6_detect::event::ScanReport;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Overall top-k share: fraction of all scan packets contributed by the k
/// most active sources across the entire report (the paper: top-2 ≈ 70%).
pub fn overall_topk_share(report: &ScanReport, k: usize) -> f64 {
    let by_source = report.packets_by_source();
    let total: u64 = by_source.iter().map(|(_, n)| n).sum();
    let top: u64 = by_source.iter().take(k).map(|(_, n)| n).sum();
    crate::stats::share(top, total)
}

/// Per-bucket top-k share and the identity of the top source.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BucketShare {
    /// Bucket index.
    pub bucket: u64,
    /// Packets in the bucket.
    pub packets: f64,
    /// Fraction contributed by the top-k sources of *this bucket*.
    pub topk_share: f64,
    /// The single most active source of the bucket, if any.
    pub top_source: Option<Ipv6Prefix>,
}

/// Computes per-bucket top-k shares. The top sources are re-ranked per
/// bucket (the paper notes the weekly #1 and #2 are not always the same
/// entities). Packets of events spanning buckets are split proportionally.
pub fn per_bucket_topk(
    report: &ScanReport,
    bucket: Bucket,
    n_buckets: u64,
    k: usize,
) -> Vec<BucketShare> {
    let w = bucket.width_ms();
    let mut per: Vec<HashMap<Ipv6Prefix, f64>> = vec![HashMap::new(); n_buckets as usize];
    for e in &report.events {
        let first = (e.start_ms / w).min(n_buckets.saturating_sub(1));
        let last = (e.end_ms / w).min(n_buckets.saturating_sub(1));
        let duration = (e.end_ms - e.start_ms) as f64;
        for b in first..=last {
            let frac = if duration == 0.0 {
                if b == first {
                    1.0
                } else {
                    0.0
                }
            } else {
                let lo = (b * w).max(e.start_ms);
                let hi = ((b + 1) * w).min(e.end_ms);
                hi.saturating_sub(lo) as f64 / duration
            };
            if frac > 0.0 {
                *per[b as usize].entry(e.source).or_default() += e.packets as f64 * frac;
            }
        }
    }
    per.into_iter()
        .enumerate()
        .map(|(b, m)| {
            let mut v: Vec<(Ipv6Prefix, f64)> = m.into_iter().collect();
            v.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
            let total: f64 = v.iter().map(|(_, n)| n).sum();
            let top: f64 = v.iter().take(k).map(|(_, n)| n).sum();
            BucketShare {
                bucket: b as u64,
                packets: total,
                topk_share: if total > 0.0 { top / total } else { 0.0 },
                top_source: v.first().map(|(s, _)| *s),
            }
        })
        .collect()
}

/// Mean of the per-bucket top-k share over buckets with traffic (the paper:
/// weekly top-2 averages 92%).
pub fn mean_topk_share(shares: &[BucketShare]) -> f64 {
    let active: Vec<&BucketShare> = shares.iter().filter(|s| s.packets > 0.0).collect();
    if active.is_empty() {
        return 0.0;
    }
    active.iter().map(|s| s.topk_share).sum::<f64>() / active.len() as f64
}

/// Converts bucket shares into plain series points (for reporting).
pub fn to_series(shares: &[BucketShare]) -> Vec<SeriesPoint> {
    shares
        .iter()
        .map(|s| SeriesPoint {
            bucket: s.bucket,
            sources: 0,
            packets: s.packets,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumen6_detect::event::ScanEvent;
    use lumen6_detect::AggLevel;
    use lumen6_trace::{Transport, WEEK_MS};

    fn ev(src: &str, start: u64, end: u64, packets: u64) -> ScanEvent {
        ScanEvent {
            source: src.parse().unwrap(),
            agg: AggLevel::L64,
            start_ms: start,
            end_ms: end,
            packets,
            distinct_dsts: 100,
            distinct_srcs: 1,
            ports: vec![((Transport::Tcp, 22), packets)],
            dsts: None,
        }
    }

    #[test]
    fn overall_share() {
        let r = ScanReport::new(vec![
            ev("2001:db8::/64", 0, 10, 700),
            ev("2001:db8:1::/64", 0, 10, 200),
            ev("2001:db8:2::/64", 0, 10, 100),
        ]);
        assert!((overall_topk_share(&r, 1) - 0.7).abs() < 1e-12);
        assert!((overall_topk_share(&r, 2) - 0.9).abs() < 1e-12);
        assert_eq!(overall_topk_share(&r, 10), 1.0);
    }

    #[test]
    fn empty_report_zero_share() {
        let r = ScanReport::default();
        assert_eq!(overall_topk_share(&r, 2), 0.0);
    }

    #[test]
    fn zero_duration_events_do_not_panic_the_ranking() {
        // Single-burst scans (start == end) exercise the duration-zero
        // split path; with several tied sources the per-bucket sort must
        // stay total (the old `partial_cmp().unwrap()` panicked on any
        // non-finite packet value reaching it).
        let r = ScanReport::new(vec![
            ev("2001:db8::/64", 1000, 1000, 0),
            ev("2001:db8:1::/64", 1000, 1000, 0),
            ev("2001:db8:2::/64", 1000, 1000, 50),
        ]);
        let shares = per_bucket_topk(&r, Bucket::Weekly, 2, 1);
        assert_eq!(shares.len(), 2);
        assert_eq!(shares[0].top_source.unwrap().to_string(), "2001:db8:2::/64");
        assert_eq!(shares[1].packets, 0.0);
    }

    #[test]
    fn per_bucket_reranks_top_source() {
        // Week 0: A dominates. Week 1: B dominates.
        let r = ScanReport::new(vec![
            ev("2001:db8::/64", 0, 1000, 900),
            ev("2001:db8:1::/64", 500, 1500, 100),
            ev("2001:db8::/64", WEEK_MS + 10, WEEK_MS + 20, 50),
            ev("2001:db8:1::/64", WEEK_MS + 10, WEEK_MS + 20, 800),
        ]);
        let shares = per_bucket_topk(&r, Bucket::Weekly, 2, 1);
        assert_eq!(shares[0].top_source.unwrap().to_string(), "2001:db8::/64");
        assert_eq!(shares[1].top_source.unwrap().to_string(), "2001:db8:1::/64");
        assert!(shares[0].topk_share > 0.85);
        assert!(shares[1].topk_share > 0.90);
    }

    #[test]
    fn mean_share_ignores_empty_buckets() {
        let r = ScanReport::new(vec![ev("2001:db8::/64", 0, 1000, 100)]);
        let shares = per_bucket_topk(&r, Bucket::Weekly, 10, 1);
        assert_eq!(mean_topk_share(&shares), 1.0);
    }

    #[test]
    fn per_bucket_packet_totals_match_series() {
        let r = ScanReport::new(vec![
            ev("2001:db8::/64", 0, 2 * WEEK_MS, 100),
            ev("2001:db8:1::/64", 10, 20, 40),
        ]);
        let shares = per_bucket_topk(&r, Bucket::Weekly, 3, 2);
        let total: f64 = shares.iter().map(|s| s.packets).sum();
        assert!((total - 140.0).abs() < 1e-9);
    }
}
