//! Figs. 4 and 8: breakdown of scans, sources, and packets by the number of
//! ports a scan targets (via the footnote-9 classifier).

use lumen6_detect::event::ScanReport;
use lumen6_detect::PortClass;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Fractions per port-count bucket.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PortBucketRow {
    /// The bucket.
    pub class: PortClass,
    /// Fraction of scans in the bucket.
    pub scans: f64,
    /// Fraction of distinct sources whose *heaviest* classification lands in
    /// the bucket (a source with both single- and multi-port scans counts
    /// once, at its widest bucket).
    pub sources: f64,
    /// Fraction of scan packets in the bucket.
    pub packets: f64,
}

/// Computes the Fig. 4 breakdown. `exclude` drops events (the paper keeps
/// AS#18 out of §3.3 characterizations).
pub fn port_buckets<F>(report: &ScanReport, exclude: F) -> Vec<PortBucketRow>
where
    F: Fn(&lumen6_addr::Ipv6Prefix) -> bool,
{
    let mut scans: HashMap<PortClass, u64> = HashMap::new();
    let mut packets: HashMap<PortClass, u64> = HashMap::new();
    let mut widest: HashMap<lumen6_addr::Ipv6Prefix, PortClass> = HashMap::new();
    let mut total_scans = 0u64;
    let mut total_packets = 0u64;

    for e in &report.events {
        if exclude(&e.source) {
            continue;
        }
        let class = e.port_class();
        total_scans += 1;
        total_packets += e.packets;
        *scans.entry(class).or_default() += 1;
        *packets.entry(class).or_default() += e.packets;
        widest
            .entry(e.source)
            .and_modify(|c| {
                if class > *c {
                    *c = class;
                }
            })
            .or_insert(class);
    }

    let mut sources: HashMap<PortClass, u64> = HashMap::new();
    for c in widest.values() {
        *sources.entry(*c).or_default() += 1;
    }
    let total_sources: u64 = widest.len() as u64;

    PortClass::ALL
        .iter()
        .map(|&class| PortBucketRow {
            class,
            scans: crate::stats::share(scans.get(&class).copied().unwrap_or(0), total_scans),
            sources: crate::stats::share(sources.get(&class).copied().unwrap_or(0), total_sources),
            packets: crate::stats::share(packets.get(&class).copied().unwrap_or(0), total_packets),
        })
        .collect()
}

/// Distinct sources per bucket (absolute counts, for Fig. 8-style reports).
pub fn sources_per_bucket(report: &ScanReport) -> HashMap<PortClass, usize> {
    let mut per: HashMap<PortClass, HashSet<lumen6_addr::Ipv6Prefix>> = HashMap::new();
    for e in &report.events {
        per.entry(e.port_class()).or_default().insert(e.source);
    }
    per.into_iter().map(|(k, v)| (k, v.len())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumen6_detect::event::ScanEvent;
    use lumen6_detect::AggLevel;
    use lumen6_trace::Transport;

    fn ev(src: &str, ports: Vec<(u16, u64)>) -> ScanEvent {
        let packets = ports.iter().map(|(_, n)| n).sum();
        ScanEvent {
            source: src.parse().unwrap(),
            agg: AggLevel::L64,
            start_ms: 0,
            end_ms: 10,
            packets,
            distinct_dsts: 100,
            distinct_srcs: 1,
            ports: ports
                .into_iter()
                .map(|(p, n)| ((Transport::Tcp, p), n))
                .collect(),
            dsts: None,
        }
    }

    #[test]
    fn heavy_multiport_dominates_packets() {
        // One >100-port scan with 80% of packets, four single-port scans.
        let wide = ev(
            "2001:db8:f::/64",
            (1..=400u16).map(|p| (p, 20u64)).collect(),
        );
        let mut events = vec![wide];
        for i in 0..4u64 {
            events.push(ev(&format!("2001:db8:{i}::/64"), vec![(22, 500)]));
        }
        let rows = port_buckets(&ScanReport::new(events), |_| false);
        let wide_row = rows
            .iter()
            .find(|r| r.class == PortClass::MoreThan100)
            .unwrap();
        assert!((wide_row.packets - 0.8).abs() < 1e-9);
        assert!((wide_row.scans - 0.2).abs() < 1e-9);
        assert!((wide_row.sources - 0.2).abs() < 1e-9);
        let single = rows.iter().find(|r| r.class == PortClass::Single).unwrap();
        assert!((single.scans - 0.8).abs() < 1e-9);
    }

    #[test]
    fn fractions_sum_to_one_per_dimension() {
        let events = vec![
            ev("2001:db8::/64", vec![(22, 100)]),
            ev("2001:db8:1::/64", (1..=8).map(|p| (p, 10)).collect()),
            ev("2001:db8:2::/64", (1..=50).map(|p| (p, 2)).collect()),
        ];
        let rows = port_buckets(&ScanReport::new(events), |_| false);
        for f in [
            rows.iter().map(|r| r.scans).sum::<f64>(),
            rows.iter().map(|r| r.sources).sum::<f64>(),
            rows.iter().map(|r| r.packets).sum::<f64>(),
        ] {
            assert!((f - 1.0).abs() < 1e-9, "{f}");
        }
    }

    #[test]
    fn source_counted_once_at_widest_class() {
        // Same source: one single-port scan and one >100-port scan.
        let events = vec![
            ev("2001:db8::/64", vec![(22, 100)]),
            ev("2001:db8::/64", (1..=400).map(|p| (p, 1)).collect()),
        ];
        let rows = port_buckets(&ScanReport::new(events), |_| false);
        let wide = rows
            .iter()
            .find(|r| r.class == PortClass::MoreThan100)
            .unwrap();
        assert_eq!(wide.sources, 1.0);
        let single = rows.iter().find(|r| r.class == PortClass::Single).unwrap();
        assert_eq!(single.sources, 0.0);
        assert_eq!(single.scans, 0.5);
    }

    #[test]
    fn empty_report_zeroes() {
        let rows = port_buckets(&ScanReport::default(), |_| false);
        assert_eq!(rows.len(), 4);
        assert!(rows.iter().all(|r| r.scans == 0.0 && r.packets == 0.0));
    }
}
