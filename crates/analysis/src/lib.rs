//! Analysis of detected scans: everything between the detector's output and
//! the paper's figures and tables.
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`heatmap`] | Fig. 1 — per-/64 (destinations × packets) histogram |
//! | [`series`] | Figs. 2, 3, 5, 6 — weekly/daily sources and packets |
//! | [`concentration`] | Fig. 3 / Fig. 6 — top-k packet shares |
//! | [`topas`] | Table 2 — top source ASes with per-level source counts |
//! | [`topports`] | Table 3 — top ports by packets, scans, source /64s |
//! | [`portbuckets`] | Figs. 4, 8 — ports-per-scan breakdowns |
//! | [`targeting`] | §3.3 — in-DNS / not-in-DNS and nearby-probe analysis |
//! | [`durations`] | §3.1 — scan duration statistics |
//! | [`overlap`] | App. A.2 / A.4 — hitlist overlap and target similarity |
//! | [`stats`] | shared percentile / share helpers |
//! | [`changepoint`] | §3.3 — AS#1's mid-window port-strategy switch |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod changepoint;
pub mod concentration;
pub mod durations;
pub mod heatmap;
pub mod overlap;
pub mod portbuckets;
pub mod series;
pub mod stats;
pub mod targeting;
pub mod topas;
pub mod topports;
