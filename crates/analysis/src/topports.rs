//! Table 3: top targeted ports by fraction of packets, scans, and source
//! /64s.
//!
//! Because most scans target many ports, the three rankings differ: the
//! packet ranking reflects the heavy multi-port scanners, while the scan
//! and source rankings reflect how many distinct scans/sources touch a
//! port at all.

use lumen6_detect::event::ScanReport;
use lumen6_trace::Transport;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// One ranked service entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PortRank {
    /// The service.
    pub service: (Transport, u16),
    /// Fraction of the respective universe (packets, scans, or sources).
    pub fraction: f64,
}

/// The three Table 3 rankings.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TopPorts {
    /// By fraction of scan packets on the port.
    pub by_packets: Vec<PortRank>,
    /// By fraction of scans that target the port at all.
    pub by_scans: Vec<PortRank>,
    /// By fraction of source /64s (sources) that target the port at all.
    pub by_sources: Vec<PortRank>,
}

/// Builds the rankings, keeping the top `limit` of each. `exclude` filters
/// out events whose source matches the predicate — the paper excludes
/// AS#18 from this analysis since it holds 80% of /64 sources and probes
/// only TCP/22.
pub fn top_ports<F>(report: &ScanReport, limit: usize, exclude: F) -> TopPorts
where
    F: Fn(&lumen6_addr::Ipv6Prefix) -> bool,
{
    let mut pkts_per_port: HashMap<(Transport, u16), u64> = HashMap::new();
    let mut scans_per_port: HashMap<(Transport, u16), u64> = HashMap::new();
    let mut srcs_per_port: HashMap<(Transport, u16), HashSet<lumen6_addr::Ipv6Prefix>> =
        HashMap::new();
    let mut total_pkts = 0u64;
    let mut total_scans = 0u64;
    let mut all_sources: HashSet<lumen6_addr::Ipv6Prefix> = HashSet::new();

    for e in &report.events {
        if exclude(&e.source) {
            continue;
        }
        total_scans += 1;
        total_pkts += e.packets;
        all_sources.insert(e.source);
        for &(svc, n) in &e.ports {
            *pkts_per_port.entry(svc).or_default() += n;
            *scans_per_port.entry(svc).or_default() += 1;
            srcs_per_port.entry(svc).or_default().insert(e.source);
        }
    }
    let total_sources = all_sources.len() as u64;

    let rank = |m: HashMap<(Transport, u16), u64>, total: u64| -> Vec<PortRank> {
        let mut v: Vec<PortRank> = m
            .into_iter()
            .map(|(service, n)| PortRank {
                service,
                fraction: crate::stats::share(n, total),
            })
            .collect();
        v.sort_by(|a, b| {
            b.fraction
                .total_cmp(&a.fraction)
                .then(a.service.cmp(&b.service))
        });
        v.truncate(limit);
        v
    };

    TopPorts {
        by_packets: rank(pkts_per_port, total_pkts),
        by_scans: rank(scans_per_port, total_scans),
        by_sources: rank(
            srcs_per_port
                .into_iter()
                .map(|(k, v)| (k, v.len() as u64))
                .collect(),
            total_sources,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumen6_detect::event::ScanEvent;
    use lumen6_detect::AggLevel;

    fn ev(src: &str, ports: Vec<(u16, u64)>) -> ScanEvent {
        let packets = ports.iter().map(|(_, n)| n).sum();
        ScanEvent {
            source: src.parse().unwrap(),
            agg: AggLevel::L64,
            start_ms: 0,
            end_ms: 10,
            packets,
            distinct_dsts: 100,
            distinct_srcs: 1,
            ports: ports
                .into_iter()
                .map(|(p, n)| ((Transport::Tcp, p), n))
                .collect(),
            dsts: None,
        }
    }

    #[test]
    fn rankings_differ_as_in_the_paper() {
        // One heavy scanner concentrates packets on 3389; many light
        // sources all touch 22.
        let mut events = vec![ev("2001:db8:ffff::/64", vec![(3389, 10_000), (22, 10)])];
        for i in 0..9u64 {
            events.push(ev(&format!("2001:db8:{i}::/64"), vec![(22, 50), (23, 40)]));
        }
        let t = top_ports(&ScanReport::new(events), 5, |_| false);
        assert_eq!(t.by_packets[0].service, (Transport::Tcp, 3389));
        assert_eq!(t.by_sources[0].service, (Transport::Tcp, 22));
        // All 10 sources touch port 22.
        assert!((t.by_sources[0].fraction - 1.0).abs() < 1e-12);
        // 10 of 10 scans touch 22 as well.
        assert_eq!(t.by_scans[0].service, (Transport::Tcp, 22));
    }

    #[test]
    fn fractions_can_sum_over_one_for_scans() {
        // Multi-port scans: each port's scan fraction is independent, so
        // the column sums exceed 1 (as in the paper's Table 3).
        let events = vec![
            ev("2001:db8::/64", vec![(22, 10), (23, 10)]),
            ev("2001:db8:1::/64", vec![(22, 10), (23, 10)]),
        ];
        let t = top_ports(&ScanReport::new(events), 5, |_| false);
        let sum: f64 = t.by_scans.iter().map(|r| r.fraction).sum();
        assert!((sum - 2.0).abs() < 1e-12);
    }

    #[test]
    fn exclusion_filters_sources() {
        let as18: lumen6_addr::Ipv6Prefix = "2001:dc8::/32".parse().unwrap();
        let events = vec![
            ev("2001:dc8:1::/64", vec![(22, 1000)]),
            ev("2001:db8::/64", vec![(8080, 10)]),
        ];
        let t = top_ports(&ScanReport::new(events), 5, |s| as18.contains(s));
        assert_eq!(t.by_packets.len(), 1);
        assert_eq!(t.by_packets[0].service, (Transport::Tcp, 8080));
    }

    #[test]
    fn empty_report() {
        let t = top_ports(&ScanReport::default(), 5, |_| false);
        assert!(t.by_packets.is_empty() && t.by_scans.is_empty() && t.by_sources.is_empty());
    }

    #[test]
    fn limit_respected() {
        let events = vec![ev("2001:db8::/64", (1..=30).map(|p| (p, 1)).collect())];
        let t = top_ports(&ScanReport::new(events), 10, |_| false);
        assert_eq!(t.by_packets.len(), 10);
    }
}
