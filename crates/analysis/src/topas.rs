//! Table 2: top source ASes by scan packets, with per-aggregation source
//! counts.
//!
//! Packets are taken from the /64-aggregated report (the paper's choice);
//! the /48, /64, and /128 source-count columns come from the respective
//! reports' qualifying sources attributed to each AS via the routing table.

use lumen6_detect::event::ScanReport;
use lumen6_netmodel::InternetRegistry;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// One row of the Table 2 reproduction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AsRow {
    /// Rank by packets (1-based).
    pub rank: usize,
    /// Origin AS number (`None` groups unattributable sources).
    pub asn: Option<u32>,
    /// Anonymized descriptor ("Datacenter (CN)").
    pub descriptor: String,
    /// Scan packets attributed at /64 aggregation.
    pub packets: u64,
    /// Share of all scan packets.
    pub share: f64,
    /// Qualifying /48 scan sources in this AS.
    pub sources_48: u64,
    /// Qualifying /64 scan sources in this AS.
    pub sources_64: u64,
    /// Qualifying /128 scan sources in this AS.
    pub sources_128: u64,
}

/// Builds the table from the three per-level reports.
pub fn top_as_table(
    registry: &InternetRegistry,
    report_128: &ScanReport,
    report_64: &ScanReport,
    report_48: &ScanReport,
    limit: usize,
) -> Vec<AsRow> {
    // Packets per AS from the /64 report.
    let mut packets: HashMap<Option<u32>, u64> = HashMap::new();
    for e in &report_64.events {
        let asn = registry.origin_asn(e.source.bits());
        *packets.entry(asn).or_default() += e.packets;
    }
    let total: u64 = packets.values().sum();

    // Distinct qualifying sources per AS and level.
    let count_sources = |report: &ScanReport| -> HashMap<Option<u32>, u64> {
        let mut per: HashMap<Option<u32>, HashSet<lumen6_addr::Ipv6Prefix>> = HashMap::new();
        for e in &report.events {
            per.entry(registry.origin_asn(e.source.bits()))
                .or_default()
                .insert(e.source);
        }
        per.into_iter().map(|(k, v)| (k, v.len() as u64)).collect()
    };
    let s48 = count_sources(report_48);
    let s64 = count_sources(report_64);
    let s128 = count_sources(report_128);

    // Union of ASes with any signal.
    let mut ases: HashSet<Option<u32>> = packets.keys().copied().collect();
    ases.extend(s48.keys().copied());
    ases.extend(s64.keys().copied());
    ases.extend(s128.keys().copied());

    let mut rows: Vec<AsRow> = ases
        .into_iter()
        .map(|asn| {
            let pk = packets.get(&asn).copied().unwrap_or(0);
            AsRow {
                rank: 0,
                asn,
                descriptor: asn
                    .and_then(|a| registry.as_info(a))
                    .map(lumen6_netmodel::AsInfo::descriptor)
                    .unwrap_or_else(|| "Unknown".to_string()),
                packets: pk,
                share: crate::stats::share(pk, total),
                sources_48: s48.get(&asn).copied().unwrap_or(0),
                sources_64: s64.get(&asn).copied().unwrap_or(0),
                sources_128: s128.get(&asn).copied().unwrap_or(0),
            }
        })
        .collect();
    rows.sort_by(|a, b| b.packets.cmp(&a.packets).then(a.asn.cmp(&b.asn)));
    rows.truncate(limit);
    for (i, row) in rows.iter_mut().enumerate() {
        row.rank = i + 1;
    }
    rows
}

/// Cumulative packet share of the top `k` rows (the paper: top-5 = 92.8%,
/// top-10 > 99%).
pub fn topk_as_share(rows: &[AsRow], k: usize) -> f64 {
    rows.iter().take(k).map(|r| r.share).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumen6_detect::event::ScanEvent;
    use lumen6_detect::AggLevel;
    use lumen6_netmodel::AsType;
    use lumen6_trace::Transport;

    fn ev(src: &str, agg: AggLevel, packets: u64) -> ScanEvent {
        ScanEvent {
            source: src.parse().unwrap(),
            agg,
            start_ms: 0,
            end_ms: 10,
            packets,
            distinct_dsts: 100,
            distinct_srcs: 1,
            ports: vec![((Transport::Tcp, 22), packets)],
            dsts: None,
        }
    }

    fn registry() -> InternetRegistry {
        let mut reg = InternetRegistry::new();
        reg.register(1, AsType::Datacenter, "CN", "a");
        reg.register(2, AsType::CloudTransit, "DE", "b");
        reg.announce("2001:db8::/32".parse().unwrap(), 1).unwrap();
        reg.announce("2001:dc8::/32".parse().unwrap(), 2).unwrap();
        reg
    }

    #[test]
    fn table_ranks_by_packets_and_counts_sources() {
        let reg = registry();
        let r64 = ScanReport::new(vec![
            ev("2001:db8::/64", AggLevel::L64, 900),
            ev("2001:dc8::/64", AggLevel::L64, 50),
            ev("2001:dc8:1::/64", AggLevel::L64, 50),
        ]);
        let r128 = ScanReport::new(vec![ev("2001:db8::1", AggLevel::L128, 900)]);
        let r48 = ScanReport::new(vec![
            ev("2001:db8::/48", AggLevel::L48, 900),
            ev("2001:dc8::/48", AggLevel::L48, 60),
            ev("2001:dc8:1::/48", AggLevel::L48, 40),
            ev("2001:dc8:2::/48", AggLevel::L48, 30),
        ]);
        let rows = top_as_table(&reg, &r128, &r64, &r48, 20);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].asn, Some(1));
        assert_eq!(rows[0].descriptor, "Datacenter (CN)");
        assert_eq!(rows[0].packets, 900);
        assert!((rows[0].share - 0.9).abs() < 1e-12);
        assert_eq!(rows[0].sources_128, 1);
        // AS 2: /48 sources (3) exceed /64 sources (2) — the AS#18 effect.
        assert_eq!(rows[1].asn, Some(2));
        assert_eq!(rows[1].sources_48, 3);
        assert_eq!(rows[1].sources_64, 2);
        assert_eq!(rows[1].sources_128, 0);
    }

    #[test]
    fn unknown_sources_grouped() {
        let reg = registry();
        let r64 = ScanReport::new(vec![ev("3fff::/64", AggLevel::L64, 10)]);
        let rows = top_as_table(
            &reg,
            &ScanReport::default(),
            &r64,
            &ScanReport::default(),
            20,
        );
        assert_eq!(rows[0].asn, None);
        assert_eq!(rows[0].descriptor, "Unknown");
    }

    #[test]
    fn limit_truncates_and_share_accumulates() {
        let reg = registry();
        let r64 = ScanReport::new(vec![
            ev("2001:db8::/64", AggLevel::L64, 900),
            ev("2001:dc8::/64", AggLevel::L64, 100),
        ]);
        let rows = top_as_table(
            &reg,
            &ScanReport::default(),
            &r64,
            &ScanReport::default(),
            1,
        );
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].rank, 1);
        assert!((topk_as_share(&rows, 1) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn empty_reports() {
        let reg = registry();
        let rows = top_as_table(
            &reg,
            &ScanReport::default(),
            &ScanReport::default(),
            &ScanReport::default(),
            20,
        );
        assert!(rows.is_empty());
    }
}
