//! Time series over scan reports: weekly (Figs. 2, 3) and daily (Figs. 5,
//! 6) sources and packets.
//!
//! An event that spans multiple buckets counts its source as *active* in
//! every overlapped bucket; its packets are attributed proportionally to
//! the overlap duration (an event with zero duration contributes entirely
//! to its start bucket).

use lumen6_detect::event::ScanReport;
use lumen6_trace::{DAY_MS, WEEK_MS};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Bucketing granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Bucket {
    /// 7-day buckets from the epoch.
    Weekly,
    /// 1-day buckets from the epoch.
    Daily,
}

impl Bucket {
    /// Bucket width in milliseconds.
    pub fn width_ms(&self) -> u64 {
        match self {
            Bucket::Weekly => WEEK_MS,
            Bucket::Daily => DAY_MS,
        }
    }
}

/// One point of a source/packet series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SeriesPoint {
    /// Bucket index (week or day number since the epoch).
    pub bucket: u64,
    /// Distinct active scan sources in the bucket.
    pub sources: u64,
    /// Packets attributed to the bucket (proportional overlap).
    pub packets: f64,
}

/// Builds the series over `[0, n_buckets)`.
pub fn series(report: &ScanReport, bucket: Bucket, n_buckets: u64) -> Vec<SeriesPoint> {
    let w = bucket.width_ms();
    let mut sources: Vec<HashSet<lumen6_addr::Ipv6Prefix>> =
        vec![HashSet::new(); n_buckets as usize];
    let mut packets = vec![0f64; n_buckets as usize];
    for e in &report.events {
        let first = (e.start_ms / w).min(n_buckets.saturating_sub(1));
        let last = (e.end_ms / w).min(n_buckets.saturating_sub(1));
        let duration = (e.end_ms - e.start_ms) as f64;
        for b in first..=last {
            sources[b as usize].insert(e.source);
            let frac = if duration == 0.0 {
                if b == first {
                    1.0
                } else {
                    0.0
                }
            } else {
                let lo = (b * w).max(e.start_ms);
                let hi = ((b + 1) * w).min(e.end_ms);
                (hi.saturating_sub(lo)) as f64 / duration
            };
            packets[b as usize] += e.packets as f64 * frac;
        }
    }
    (0..n_buckets)
        .map(|b| SeriesPoint {
            bucket: b,
            sources: sources[b as usize].len() as u64,
            packets: packets[b as usize],
        })
        .collect()
}

/// Median of the `sources` component (the paper: "median weekly active /64
/// sources is 22").
pub fn median_sources(points: &[SeriesPoint]) -> u64 {
    let mut v: Vec<u64> = points.iter().map(|p| p.sources).collect();
    v.sort_unstable();
    crate::stats::median_sorted(&v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumen6_detect::event::ScanEvent;
    use lumen6_detect::AggLevel;
    use lumen6_trace::Transport;

    fn ev(src: &str, start: u64, end: u64, packets: u64) -> ScanEvent {
        ScanEvent {
            source: src.parse().unwrap(),
            agg: AggLevel::L64,
            start_ms: start,
            end_ms: end,
            packets,
            distinct_dsts: 100,
            distinct_srcs: 1,
            ports: vec![((Transport::Tcp, 22), packets)],
            dsts: None,
        }
    }

    #[test]
    fn single_bucket_event() {
        let r = ScanReport::new(vec![ev("2001:db8::/64", 1000, 2000, 50)]);
        let s = series(&r, Bucket::Daily, 3);
        assert_eq!(s[0].sources, 1);
        assert_eq!(s[0].packets, 50.0);
        assert_eq!(s[1].sources, 0);
        assert_eq!(s[2].packets, 0.0);
    }

    #[test]
    fn spanning_event_counts_in_every_bucket() {
        // Exactly two days, split 50/50.
        let r = ScanReport::new(vec![ev("2001:db8::/64", 0, 2 * DAY_MS, 100)]);
        let s = series(&r, Bucket::Daily, 3);
        assert_eq!(s[0].sources, 1);
        assert_eq!(s[1].sources, 1);
        assert_eq!(s[2].sources, 1, "end timestamp touches bucket 2");
        assert!((s[0].packets - 50.0).abs() < 1e-9);
        assert!((s[1].packets - 50.0).abs() < 1e-9);
        assert_eq!(s[2].packets, 0.0, "zero overlap width at the boundary");
    }

    #[test]
    fn packets_conserved_across_buckets() {
        let r = ScanReport::new(vec![
            ev("2001:db8::/64", 0, 10 * DAY_MS - 1, 1000),
            ev("2001:db8:1::/64", DAY_MS / 2, DAY_MS / 2 + 1000, 77),
        ]);
        let s = series(&r, Bucket::Daily, 12);
        let total: f64 = s.iter().map(|p| p.packets).sum();
        assert!((total - 1077.0).abs() < 1e-6, "total {total}");
    }

    #[test]
    fn zero_duration_event_attributed_once() {
        let r = ScanReport::new(vec![ev("2001:db8::/64", DAY_MS, DAY_MS, 10)]);
        let s = series(&r, Bucket::Daily, 3);
        assert_eq!(s[1].packets, 10.0);
        assert_eq!(s[1].sources, 1);
        let total: f64 = s.iter().map(|p| p.packets).sum();
        assert_eq!(total, 10.0);
    }

    #[test]
    fn distinct_sources_deduplicated_per_bucket() {
        let r = ScanReport::new(vec![
            ev("2001:db8::/64", 0, 1000, 5),
            ev("2001:db8::/64", 5000, 6000, 5),
            ev("2001:db8:1::/64", 0, 1000, 5),
        ]);
        let s = series(&r, Bucket::Weekly, 1);
        assert_eq!(s[0].sources, 2);
    }

    #[test]
    fn events_beyond_range_clamped() {
        let r = ScanReport::new(vec![ev("2001:db8::/64", 100 * DAY_MS, 101 * DAY_MS, 9)]);
        let s = series(&r, Bucket::Daily, 5);
        // Clamped into the last bucket rather than panicking.
        assert_eq!(s[4].sources, 1);
    }

    #[test]
    fn median_sources_works() {
        let pts = vec![
            SeriesPoint {
                bucket: 0,
                sources: 5,
                packets: 0.0,
            },
            SeriesPoint {
                bucket: 1,
                sources: 22,
                packets: 0.0,
            },
            SeriesPoint {
                bucket: 2,
                sources: 40,
                packets: 0.0,
            },
        ];
        assert_eq!(median_sources(&pts), 22);
    }
}
