//! Strategy-shift detection in a scanner's behavior over time.
//!
//! The paper observes AS#1 "changes strategy and only TCP ports 22, 3389,
//! 8080, and 8443 are seen starting in May 2021" — a change point in the
//! per-day targeted-port sets. This module detects such shifts generically:
//! given one set of targeted services per time bucket, it finds the split
//! that minimizes within-segment diversity, scored by the Jaccard
//! similarity of each bucket's set to its segment's union.

use lumen6_trace::Transport;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// A detected change point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PortShift {
    /// First bucket of the new regime.
    pub bucket: usize,
    /// Mean within-segment Jaccard before the shift.
    pub before_coherence: f64,
    /// Mean within-segment Jaccard after the shift.
    pub after_coherence: f64,
    /// Jaccard similarity between the two regimes' port unions — low means
    /// a genuine strategy change, not a gradual drift.
    pub cross_similarity: f64,
    /// Size of the pre-shift port union.
    pub ports_before: usize,
    /// Size of the post-shift port union.
    pub ports_after: usize,
}

type Service = (Transport, u16);

fn jaccard(a: &BTreeSet<Service>, b: &BTreeSet<Service>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let inter = a.intersection(b).count();
    let union = a.len() + b.len() - inter;
    inter as f64 / union as f64
}

fn segment_score(buckets: &[BTreeSet<Service>]) -> (f64, BTreeSet<Service>) {
    let mut union = BTreeSet::new();
    for b in buckets {
        union.extend(b.iter().copied());
    }
    if buckets.is_empty() {
        return (1.0, union);
    }
    let score = buckets.iter().map(|b| jaccard(b, &union)).sum::<f64>() / buckets.len() as f64;
    (score, union)
}

/// Finds the best single change point in a sequence of per-bucket service
/// sets. Returns `None` when fewer than `2 * min_segment` non-empty buckets
/// exist or when no split separates the regimes (cross-similarity above
/// `max_cross_similarity`).
pub fn detect_port_shift(
    buckets: &[BTreeSet<Service>],
    min_segment: usize,
    max_cross_similarity: f64,
) -> Option<PortShift> {
    let min_segment = min_segment.max(1);
    if buckets.len() < 2 * min_segment {
        return None;
    }
    let mut best: Option<PortShift> = None;
    for split in min_segment..=(buckets.len() - min_segment) {
        let (before_score, before_union) = segment_score(&buckets[..split]);
        let (after_score, after_union) = segment_score(&buckets[split..]);
        let cross = jaccard(&before_union, &after_union);
        let quality = before_score + after_score - 2.0 * cross;
        let candidate = PortShift {
            bucket: split,
            before_coherence: before_score,
            after_coherence: after_score,
            cross_similarity: cross,
            ports_before: before_union.len(),
            ports_after: after_union.len(),
        };
        let better = match &best {
            None => true,
            Some(b) => quality > b.before_coherence + b.after_coherence - 2.0 * b.cross_similarity,
        };
        if better {
            best = Some(candidate);
        }
    }
    best.filter(|b| b.cross_similarity <= max_cross_similarity)
}

/// Convenience: builds per-bucket service sets for one source from raw
/// records (bucket = `width_ms` windows from the epoch).
pub fn service_sets_per_bucket(
    records: &[lumen6_trace::PacketRecord],
    source: lumen6_addr::Ipv6Prefix,
    width_ms: u64,
    n_buckets: usize,
) -> Vec<BTreeSet<Service>> {
    let mut out = vec![BTreeSet::new(); n_buckets];
    for r in records {
        if source.contains_addr(r.src) {
            let b = (r.ts_ms / width_ms) as usize;
            if b < n_buckets {
                out[b].insert((r.proto, r.dport));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ports: &[u16]) -> BTreeSet<Service> {
        ports.iter().map(|&p| (Transport::Tcp, p)).collect()
    }

    #[test]
    fn clean_switch_detected_at_the_right_bucket() {
        // 10 buckets of a wide port set, then 10 of {22, 3389, 8080, 8443}.
        let wide: Vec<u16> = (1..=200).collect();
        let mut buckets: Vec<BTreeSet<Service>> = (0..10).map(|_| set(&wide)).collect();
        buckets.extend((0..10).map(|_| set(&[22, 3389, 8080, 8443])));
        let shift = detect_port_shift(&buckets, 3, 0.5).expect("shift found");
        assert_eq!(shift.bucket, 10);
        assert!(shift.before_coherence > 0.99);
        assert!(shift.after_coherence > 0.99);
        assert!(shift.cross_similarity < 0.05);
        assert_eq!(shift.ports_before, 200);
        assert_eq!(shift.ports_after, 4);
    }

    #[test]
    fn stable_behavior_yields_no_shift() {
        let buckets: Vec<BTreeSet<Service>> = (0..20).map(|_| set(&[22, 80, 443])).collect();
        assert!(detect_port_shift(&buckets, 3, 0.5).is_none());
    }

    #[test]
    fn noisy_switch_still_found() {
        // Daily port samples: subsets of the regime's pool.
        let wide: Vec<u16> = (1..=100).collect();
        let narrow = [22u16, 3389, 8080, 8443];
        let mut buckets = Vec::new();
        for d in 0..12 {
            let sample: Vec<u16> = wide.iter().copied().skip(d % 5).step_by(2).collect();
            buckets.push(set(&sample));
        }
        for d in 0..12 {
            let sample: Vec<u16> = narrow.iter().copied().skip(d % 2).collect();
            buckets.push(set(&sample));
        }
        let shift = detect_port_shift(&buckets, 4, 0.5).expect("shift found");
        assert!((10..=14).contains(&shift.bucket), "bucket {}", shift.bucket);
        assert!(shift.ports_after <= 4);
    }

    #[test]
    fn too_few_buckets_is_none() {
        let buckets: Vec<BTreeSet<Service>> = (0..5).map(|_| set(&[22])).collect();
        assert!(detect_port_shift(&buckets, 3, 0.9).is_none());
    }

    #[test]
    fn service_sets_builder_buckets_by_time_and_source() {
        let src: lumen6_addr::Ipv6Prefix = "2001:db8::/64".parse().unwrap();
        let records = vec![
            lumen6_trace::PacketRecord::tcp(10, src.bits() | 1, 1, 1, 22, 60),
            lumen6_trace::PacketRecord::tcp(1_010, src.bits() | 2, 1, 1, 80, 60),
            lumen6_trace::PacketRecord::tcp(1_020, 0xffff, 1, 1, 443, 60), // other source
            lumen6_trace::PacketRecord::tcp(9_999_999, src.bits() | 1, 1, 1, 23, 60), // out of range
        ];
        let sets = service_sets_per_bucket(&records, src, 1_000, 3);
        assert_eq!(sets[0], set(&[22]));
        assert_eq!(sets[1], set(&[80]));
        assert!(sets[2].is_empty());
    }
}
