//! Scan duration statistics (§3.1): medians per aggregation level, longest
//! scan.

use lumen6_detect::event::ScanReport;
use serde::{Deserialize, Serialize};

/// Duration summary for one report.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DurationSummary {
    /// Number of scans.
    pub scans: usize,
    /// Median duration (ms).
    pub median_ms: u64,
    /// 90th percentile (ms).
    pub p90_ms: u64,
    /// Longest scan (ms).
    pub max_ms: u64,
}

/// Computes the summary.
pub fn summarize(report: &ScanReport) -> DurationSummary {
    let d = report.durations_ms();
    DurationSummary {
        scans: d.len(),
        median_ms: crate::stats::median_sorted(&d),
        p90_ms: crate::stats::percentile_sorted(&d, 90.0),
        max_ms: d.last().copied().unwrap_or(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumen6_detect::event::ScanEvent;
    use lumen6_detect::AggLevel;
    use lumen6_trace::Transport;

    fn ev(dur: u64) -> ScanEvent {
        ScanEvent {
            source: "2001:db8::/64".parse().unwrap(),
            agg: AggLevel::L64,
            start_ms: 0,
            end_ms: dur,
            packets: 1,
            distinct_dsts: 100,
            distinct_srcs: 1,
            ports: vec![((Transport::Tcp, 22), 1)],
            dsts: None,
        }
    }

    #[test]
    fn summary_on_known_set() {
        let r = ScanReport::new(vec![ev(100), ev(200), ev(1_000_000)]);
        let s = summarize(&r);
        assert_eq!(s.scans, 3);
        assert_eq!(s.median_ms, 200);
        assert_eq!(s.max_ms, 1_000_000);
        assert_eq!(s.p90_ms, 1_000_000);
    }

    #[test]
    fn empty_report() {
        let s = summarize(&ScanReport::default());
        assert_eq!(s.scans, 0);
        assert_eq!(s.median_ms, 0);
        assert_eq!(s.max_ms, 0);
    }
}
