//! Targeted-address analysis (§3.3): which probed addresses exist in DNS,
//! and whether not-in-DNS targets were preceded by a nearby in-DNS probe.

use lumen6_addr::Ipv6Prefix;
use lumen6_detect::event::ScanReport;
use lumen6_detect::AggLevel;
use lumen6_trace::PacketRecord;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Per-source in-DNS / not-in-DNS target counts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SourceDns {
    /// The scan source.
    pub source: Ipv6Prefix,
    /// Distinct probed addresses present in DNS.
    pub in_dns: u64,
    /// Distinct probed addresses not present in DNS.
    pub not_in_dns: u64,
}

impl SourceDns {
    /// Fraction of this source's targets that are *not* in DNS.
    pub fn not_in_dns_frac(&self) -> f64 {
        crate::stats::share(self.not_in_dns, self.in_dns + self.not_in_dns)
    }

    /// Total distinct targets.
    pub fn total(&self) -> u64 {
        self.in_dns + self.not_in_dns
    }
}

/// Computes per-source DNS breakdowns from a report whose events retained
/// destination sets (`keep_dsts`). Events without destination sets are
/// skipped.
pub fn dns_breakdown<F>(report: &ScanReport, is_in_dns: F) -> Vec<SourceDns>
where
    F: Fn(u128) -> bool,
{
    let mut per: HashMap<Ipv6Prefix, (HashSet<u128>, HashSet<u128>)> = HashMap::new();
    for e in &report.events {
        let Some(dsts) = e.dsts.as_ref() else {
            continue;
        };
        let entry = per.entry(e.source).or_default();
        for &d in dsts {
            if is_in_dns(d) {
                entry.0.insert(d);
            } else {
                entry.1.insert(d);
            }
        }
    }
    let mut v: Vec<SourceDns> = per
        .into_iter()
        .map(|(source, (dns, not))| SourceDns {
            source,
            in_dns: dns.len() as u64,
            not_in_dns: not.len() as u64,
        })
        .collect();
    v.sort_by_key(|s| s.source);
    v
}

/// Summary of the §3.3 findings over per-source breakdowns.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DnsSummary {
    /// Number of sources analyzed.
    pub sources: usize,
    /// Fraction of sources whose targets are *all* in DNS (paper: 75%).
    pub all_in_dns_frac: f64,
    /// Fraction of sources with ≥ 33% not-in-DNS targets (paper: 10%).
    pub heavy_not_in_dns_frac: f64,
    /// Spearman-style sign: do larger scans have a higher not-in-DNS
    /// fraction? Positive means yes (the paper's observation).
    pub size_vs_hidden_correlation: f64,
}

/// Summarizes breakdowns.
pub fn summarize_dns(breakdowns: &[SourceDns]) -> DnsSummary {
    let n = breakdowns.len();
    if n == 0 {
        return DnsSummary {
            sources: 0,
            all_in_dns_frac: 0.0,
            heavy_not_in_dns_frac: 0.0,
            size_vs_hidden_correlation: 0.0,
        };
    }
    let all_in = breakdowns.iter().filter(|b| b.not_in_dns == 0).count();
    let heavy = breakdowns
        .iter()
        .filter(|b| b.not_in_dns_frac() >= 1.0 / 3.0)
        .count();
    DnsSummary {
        sources: n,
        all_in_dns_frac: all_in as f64 / n as f64,
        heavy_not_in_dns_frac: heavy as f64 / n as f64,
        size_vs_hidden_correlation: rank_correlation(
            &breakdowns
                .iter()
                .map(|b| b.total() as f64)
                .collect::<Vec<_>>(),
            &breakdowns
                .iter()
                .map(SourceDns::not_in_dns_frac)
                .collect::<Vec<_>>(),
        ),
    }
}

/// Spearman rank correlation (simple average-rank implementation).
fn rank_correlation(x: &[f64], y: &[f64]) -> f64 {
    fn ranks(v: &[f64]) -> Vec<f64> {
        let mut idx: Vec<usize> = (0..v.len()).collect();
        idx.sort_by(|&a, &b| v[a].total_cmp(&v[b]));
        let mut r = vec![0f64; v.len()];
        let mut i = 0;
        while i < idx.len() {
            let mut j = i;
            while j + 1 < idx.len() && v[idx[j + 1]] == v[idx[i]] {
                j += 1;
            }
            let avg = (i + j) as f64 / 2.0;
            for &k in &idx[i..=j] {
                r[k] = avg;
            }
            i = j + 1;
        }
        r
    }
    if x.len() < 2 {
        return 0.0;
    }
    let rx = ranks(x);
    let ry = ranks(y);
    let mx = rx.iter().sum::<f64>() / rx.len() as f64;
    let my = ry.iter().sum::<f64>() / ry.len() as f64;
    let cov: f64 = rx.iter().zip(&ry).map(|(a, b)| (a - mx) * (b - my)).sum();
    let vx: f64 = rx.iter().map(|a| (a - mx).powi(2)).sum();
    let vy: f64 = ry.iter().map(|b| (b - my).powi(2)).sum();
    if vx == 0.0 || vy == 0.0 {
        0.0
    } else {
        cov / (vx * vy).sqrt()
    }
}

/// Per-source result of the nearby-prior-probe analysis: for each
/// not-in-DNS target, was there a previous probe from the same source to an
/// in-DNS address in the same /(128-span)?
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NearbyPrior {
    /// The scan source.
    pub source: Ipv6Prefix,
    /// Not-in-DNS targets examined.
    pub hidden_targets: u64,
    /// Per span (in low bits, e.g. 4 → /124): count with a nearby prior
    /// in-DNS probe.
    pub with_prior: Vec<(u8, u64)>,
}

impl NearbyPrior {
    /// Fraction of hidden targets with a nearby prior for the given span.
    pub fn fraction(&self, span: u8) -> f64 {
        let hit = self
            .with_prior
            .iter()
            .find(|(s, _)| *s == span)
            .map(|(_, n)| *n)
            .unwrap_or(0);
        crate::stats::share(hit, self.hidden_targets)
    }
}

/// Runs the nearby-prior analysis over raw (time-sorted) records for the
/// given sources. `spans` are neighborhood sizes in low bits; the paper uses
/// 4, 8, 12, 16 (/124, /120, /116, /112).
pub fn nearby_prior_analysis<F>(
    records: &[PacketRecord],
    sources: &[Ipv6Prefix],
    agg: AggLevel,
    is_in_dns: F,
    spans: &[u8],
) -> Vec<NearbyPrior>
where
    F: Fn(u128) -> bool,
{
    let wanted: HashSet<Ipv6Prefix> = sources.iter().copied().collect();
    // Per source, per span: set of in-DNS neighborhoods already probed.
    let mut seen: HashMap<Ipv6Prefix, Vec<HashSet<u128>>> = HashMap::new();
    let mut result: HashMap<Ipv6Prefix, NearbyPrior> = HashMap::new();

    for r in records {
        let s = agg.source_of(r.src);
        if !wanted.contains(&s) {
            continue;
        }
        let entry = seen
            .entry(s)
            .or_insert_with(|| vec![HashSet::new(); spans.len()]);
        if is_in_dns(r.dst) {
            for (i, &span) in spans.iter().enumerate() {
                entry[i].insert(r.dst >> span);
            }
        } else {
            let res = result.entry(s).or_insert_with(|| NearbyPrior {
                source: s,
                hidden_targets: 0,
                with_prior: spans.iter().map(|&sp| (sp, 0)).collect(),
            });
            res.hidden_targets += 1;
            for (i, &span) in spans.iter().enumerate() {
                if entry[i].contains(&(r.dst >> span)) {
                    res.with_prior[i].1 += 1;
                }
            }
        }
    }
    let mut v: Vec<NearbyPrior> = result.into_values().collect();
    v.sort_by_key(|n| n.source);
    v
}

/// Median number of targeted addresses per destination /64 (§4: AS#1 and
/// AS#3 target far-apart addresses, median 2 per /64; the Dec-24 scanner
/// exactly 1).
pub fn targets_per_dst64(targets: &[u128]) -> u64 {
    let mut per: HashMap<u64, u64> = HashMap::new();
    for &t in targets {
        *per.entry((t >> 64) as u64).or_default() += 1;
    }
    let mut counts: Vec<u64> = per.into_values().collect();
    counts.sort_unstable();
    crate::stats::median_sorted(&counts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumen6_detect::event::ScanEvent;
    use lumen6_trace::Transport;

    fn ev(src: &str, dsts: Vec<u128>) -> ScanEvent {
        ScanEvent {
            source: src.parse().unwrap(),
            agg: AggLevel::L64,
            start_ms: 0,
            end_ms: 10,
            packets: dsts.len() as u64,
            distinct_dsts: dsts.len() as u64,
            distinct_srcs: 1,
            ports: vec![((Transport::Tcp, 22), dsts.len() as u64)],
            dsts: Some(dsts),
        }
    }

    #[test]
    fn rank_correlation_tolerates_nan_inputs() {
        // A zero-duration event can yield a 0/0 = NaN rate upstream; the
        // rank sort previously used `partial_cmp().unwrap()` and panicked.
        // NaN ranks are arbitrary but the function must stay total.
        let nan = f64::NAN;
        let rho = rank_correlation(&[1.0, nan, 2.0, 0.5], &[0.1, 0.2, 0.3, 0.4]);
        assert!(rho.is_finite());
        // NaN-free inputs still rank correctly.
        let rho = rank_correlation(&[1.0, 2.0, 3.0], &[10.0, 20.0, 30.0]);
        assert!((rho - 1.0).abs() < 1e-12);
    }

    #[test]
    fn summarize_dns_handles_degenerate_sources() {
        // Sources with zero targets produce 0-fraction breakdowns and must
        // not panic the correlation ranking.
        let breakdowns = vec![
            SourceDns {
                source: "2001:db8::/64".parse().unwrap(),
                in_dns: 0,
                not_in_dns: 0,
            },
            SourceDns {
                source: "2001:db8:1::/64".parse().unwrap(),
                in_dns: 5,
                not_in_dns: 5,
            },
        ];
        let s = summarize_dns(&breakdowns);
        assert_eq!(s.sources, 2);
        assert!(s.size_vs_hidden_correlation.is_finite());
    }

    /// in-DNS = even addresses.
    fn in_dns(a: u128) -> bool {
        a.is_multiple_of(2)
    }

    #[test]
    fn breakdown_counts_distinct_targets() {
        let r = ScanReport::new(vec![
            ev("2001:db8::/64", vec![2, 4, 6, 3]),
            ev("2001:db8::/64", vec![2, 5]), // overlap on 2
        ]);
        let b = dns_breakdown(&r, in_dns);
        assert_eq!(b.len(), 1);
        assert_eq!(b[0].in_dns, 3);
        assert_eq!(b[0].not_in_dns, 2);
        assert!((b[0].not_in_dns_frac() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn events_without_dsts_skipped() {
        let mut e = ev("2001:db8::/64", vec![2]);
        e.dsts = None;
        let b = dns_breakdown(&ScanReport::new(vec![e]), in_dns);
        assert!(b.is_empty());
    }

    #[test]
    fn summary_fractions() {
        let r = ScanReport::new(vec![
            ev("2001:db8:0::/64", vec![2, 4]),    // all in DNS
            ev("2001:db8:1::/64", vec![2, 4, 6]), // all in DNS
            ev("2001:db8:2::/64", vec![2, 4, 8, 10, 12, 14, 16, 18, 20, 3]), // 10% hidden
            ev("2001:db8:3::/64", vec![2, 3, 5]), // 67% hidden
        ]);
        let s = summarize_dns(&dns_breakdown(&r, in_dns));
        assert_eq!(s.sources, 4);
        assert!((s.all_in_dns_frac - 0.5).abs() < 1e-12);
        assert!((s.heavy_not_in_dns_frac - 0.25).abs() < 1e-12);
    }

    #[test]
    fn correlation_positive_when_bigger_scans_hide_more() {
        let breakdowns = vec![
            SourceDns {
                source: "2001:db8::/64".parse().unwrap(),
                in_dns: 10,
                not_in_dns: 0,
            },
            SourceDns {
                source: "2001:db8:1::/64".parse().unwrap(),
                in_dns: 50,
                not_in_dns: 10,
            },
            SourceDns {
                source: "2001:db8:2::/64".parse().unwrap(),
                in_dns: 100,
                not_in_dns: 100,
            },
        ];
        let s = summarize_dns(&breakdowns);
        assert!(s.size_vs_hidden_correlation > 0.9);
    }

    #[test]
    fn nearby_prior_detects_explorers() {
        // Source probes the in-DNS 0x100, then the hidden 0x10f (same /120),
        // then the hidden 0xff00 (no prior neighborhood).
        let src: Ipv6Prefix = "2001:db8::/64".parse().unwrap();
        let s = src.bits() | 1;
        let records = vec![
            PacketRecord::tcp(0, s, 0x100, 1, 22, 60),
            PacketRecord::tcp(10, s, 0x10f, 1, 22, 60),
            PacketRecord::tcp(20, s, 0xff01, 1, 22, 60),
        ];
        let out = nearby_prior_analysis(&records, &[src], AggLevel::L64, in_dns, &[4, 8]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].hidden_targets, 2);
        // /124 (span 4): 0x10f >> 4 = 0x10 == 0x100 >> 4 → prior found.
        assert!((out[0].fraction(4) - 0.5).abs() < 1e-12);
        assert!((out[0].fraction(8) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn nearby_prior_requires_temporal_order() {
        // Hidden target BEFORE the in-DNS neighbor: no prior.
        let src: Ipv6Prefix = "2001:db8::/64".parse().unwrap();
        let s = src.bits() | 1;
        let records = vec![
            PacketRecord::tcp(0, s, 0x10f, 1, 22, 60),
            PacketRecord::tcp(10, s, 0x100, 1, 22, 60),
        ];
        let out = nearby_prior_analysis(&records, &[src], AggLevel::L64, in_dns, &[4]);
        assert_eq!(out[0].fraction(4), 0.0);
    }

    #[test]
    fn nearby_prior_ignores_other_sources() {
        let src: Ipv6Prefix = "2001:db8::/64".parse().unwrap();
        let other = 0xffff_0000_0000_0000_0000_0000_0000_0001u128;
        let records = vec![
            PacketRecord::tcp(0, other, 0x100, 1, 22, 60), // other source's hit
            PacketRecord::tcp(10, src.bits() | 1, 0x10f, 1, 22, 60),
        ];
        let out = nearby_prior_analysis(&records, &[src], AggLevel::L64, in_dns, &[4]);
        assert_eq!(out[0].fraction(4), 0.0);
    }

    #[test]
    fn targets_per_64_median() {
        // Three /64s with 1, 2, and 5 targets.
        let mut t = vec![1u128 << 64];
        t.extend([2u128 << 64 | 1, 2u128 << 64 | 2]);
        t.extend((1..=5u128).map(|i| (3u128 << 64) | i));
        assert_eq!(targets_per_dst64(&t), 2);
        // Spread scanner: every packet a distinct /64 → median 1.
        let spread: Vec<u128> = (0..100u128).map(|i| i << 64).collect();
        assert_eq!(targets_per_dst64(&spread), 1);
    }
}
