//! DNS-backscatter scan detection — the third vantage point.
//!
//! Fukuda & Heidemann ("Who Knocks at the IPv6 Door?", IMC 2018 — the
//! paper's reference \[12\]) detect IPv6 scanning *without* seeing the scan
//! traffic: when a scanner probes networks around the world, firewalls,
//! mail servers, and IDSes near the targets perform **reverse DNS (PTR)
//! lookups of the scanner's source address**. The authoritative name server
//! for the scanner's reverse zone therefore observes queries about that
//! address arriving from *many unrelated resolvers* — backscatter. A benign
//! host's address is looked up by the handful of resolvers belonging to
//! services it actually uses; a scanner's address is looked up by the whole
//! world.
//!
//! This crate provides both halves at simulation scale:
//!
//! - [`generate_backscatter`]: given the packet stream scanners emit toward
//!   their victims, produce the PTR-query stream an authority for the
//!   scanners' reverse zones would record (each victim network's resolver
//!   looks up a probing source with a configurable probability, with
//!   per-resolver caching).
//! - [`BackscatterDetector`]: the querier-diversity classifier — an address
//!   (or covering prefix, aggregation matters here exactly as in §2.2 of
//!   the paper) whose PTR queries arrive from at least `min_queriers`
//!   distinct resolvers within the window is flagged as a scanner.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use lumen6_addr::Ipv6Prefix;
use lumen6_trace::PacketRecord;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// One PTR query observed at the scanners' reverse-zone authority.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PtrQuery {
    /// Query arrival time (ms since epoch).
    pub ts_ms: u64,
    /// The recursive resolver that asked.
    pub resolver: u128,
    /// The address being looked up (a scan source, usually).
    pub target: u128,
}

/// Backscatter generation parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BackscatterConfig {
    /// Probability that a probed network's middlebox performs a PTR lookup
    /// for a given unsolicited packet (before caching).
    pub lookup_probability: f64,
    /// Resolvers cache negative/positive PTR answers: repeat lookups of the
    /// same target by the same resolver within this window are suppressed.
    pub cache_ttl_ms: u64,
    /// Query latency added to the probe timestamp (fixed small delay).
    pub latency_ms: u64,
}

impl Default for BackscatterConfig {
    fn default() -> Self {
        BackscatterConfig {
            lookup_probability: 0.2,
            cache_ttl_ms: 3_600_000,
            latency_ms: 50,
        }
    }
}

/// Derives the resolver address responsible for a victim: one recursive
/// resolver per destination /64 (a site-level resolver — the /64 is the
/// universal subnet unit, so this is the finest realistic granularity).
fn resolver_of(dst: u128) -> u128 {
    // Stable, distinct, and visibly "a resolver": ::53 in the victim site.
    (Ipv6Prefix::new(dst, 64).bits()) | 0x53
}

/// Generates the PTR-query stream for a victim-side packet trace.
///
/// `records` is the traffic arriving at victims (e.g. the telescope trace);
/// the output is what the *scanners'* reverse-zone authority sees. Queries
/// are time-sorted.
pub fn generate_backscatter(
    records: &[PacketRecord],
    config: &BackscatterConfig,
    seed: u64,
) -> Vec<PtrQuery> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xba55_ca77);
    // (resolver, target) -> expiry of the cached answer.
    let mut cache: HashMap<(u128, u128), u64> = HashMap::new();
    let mut out = Vec::new();
    for r in records {
        if !rng.gen_bool(config.lookup_probability) {
            continue;
        }
        let resolver = resolver_of(r.dst);
        match cache.get(&(resolver, r.src)) {
            Some(&expiry) if r.ts_ms < expiry => continue,
            _ => {}
        }
        cache.insert((resolver, r.src), r.ts_ms + config.cache_ttl_ms);
        out.push(PtrQuery {
            ts_ms: r.ts_ms + config.latency_ms,
            resolver,
            target: r.src,
        });
    }
    out.sort_by_key(|q| q.ts_ms);
    out
}

/// A backscatter-detected scanner.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BackscatterScanner {
    /// The flagged source prefix (at the detector's aggregation).
    pub source: Ipv6Prefix,
    /// Distinct resolvers that asked about it.
    pub queriers: u64,
    /// Total queries observed.
    pub queries: u64,
    /// First query time.
    pub first_ms: u64,
    /// Last query time.
    pub last_ms: u64,
}

/// Querier-diversity detector over PTR query streams.
///
/// ```
/// use lumen6_backscatter::{generate_backscatter, BackscatterConfig, BackscatterDetector};
/// use lumen6_trace::PacketRecord;
///
/// // A scanner probing 500 different victim sites...
/// let traffic: Vec<PacketRecord> = (0..500u64)
///     .map(|i| PacketRecord::tcp(i * 500, 0x2001, (i as u128) << 64 | 1, 1, 22, 60))
///     .collect();
/// // ...draws PTR lookups from hundreds of distinct resolvers.
/// let queries = generate_backscatter(&traffic, &BackscatterConfig::default(), 1);
/// let flagged = BackscatterDetector::default().detect(&queries);
/// assert_eq!(flagged.len(), 1);
/// assert!(flagged[0].queriers >= 20);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BackscatterDetector {
    /// Source aggregation applied to the queried address (the same /128 vs
    /// /64 question as for direct detection: a scanner rotating source
    /// addresses spreads its backscatter across the whole prefix).
    pub agg_len: u8,
    /// Minimum distinct resolvers to flag a source.
    pub min_queriers: u64,
}

impl Default for BackscatterDetector {
    fn default() -> Self {
        BackscatterDetector {
            agg_len: 64,
            min_queriers: 20,
        }
    }
}

impl BackscatterDetector {
    /// Runs detection over a query window.
    pub fn detect(&self, queries: &[PtrQuery]) -> Vec<BackscatterScanner> {
        let mut per: HashMap<Ipv6Prefix, (HashSet<u128>, u64, u64, u64)> = HashMap::new();
        for q in queries {
            let src = Ipv6Prefix::new(q.target, self.agg_len);
            let e = per
                .entry(src)
                .or_insert_with(|| (HashSet::new(), 0, q.ts_ms, q.ts_ms));
            e.0.insert(q.resolver);
            e.1 += 1;
            e.2 = e.2.min(q.ts_ms);
            e.3 = e.3.max(q.ts_ms);
        }
        let mut out: Vec<BackscatterScanner> = per
            .into_iter()
            .filter(|(_, (queriers, _, _, _))| queriers.len() as u64 >= self.min_queriers)
            .map(
                |(source, (queriers, queries, first, last))| BackscatterScanner {
                    source,
                    queriers: queriers.len() as u64,
                    queries,
                    first_ms: first,
                    last_ms: last,
                },
            )
            .collect();
        out.sort_by(|a, b| b.queriers.cmp(&a.queriers).then(a.source.cmp(&b.source)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scanner probing many distinct victim /48s.
    fn scan_traffic(src: u128, victims: u64) -> Vec<PacketRecord> {
        (0..victims)
            .map(|i| PacketRecord::tcp(i * 500, src, (u128::from(i) << 80) | 1, 1, 22, 60))
            .collect()
    }

    /// A benign client talking repeatedly to two services.
    fn benign_traffic(src: u128) -> Vec<PacketRecord> {
        (0..200u64)
            .map(|i| PacketRecord::tcp(i * 700, src, (u128::from(i % 2) << 80) | 9, 1, 443, 60))
            .collect()
    }

    #[test]
    fn scanner_draws_many_queriers_benign_does_not() {
        let scanner = 0x2001_0db8_0000_0000_0000_0000_0000_0001u128;
        let benign = 0x2001_0db9_0000_0000_0000_0000_0000_0001u128;
        let mut traffic = scan_traffic(scanner, 500);
        traffic.extend(benign_traffic(benign));
        lumen6_trace::sort_by_time(&mut traffic);

        let queries = generate_backscatter(&traffic, &BackscatterConfig::default(), 1);
        assert!(!queries.is_empty());
        let detected = BackscatterDetector::default().detect(&queries);
        assert_eq!(detected.len(), 1, "{detected:?}");
        assert!(detected[0].source.contains_addr(scanner));
        assert!(detected[0].queriers >= 20);
    }

    #[test]
    fn caching_suppresses_repeat_lookups() {
        // One victim probed 1000 times: at most one query per resolver per
        // TTL window.
        let scanner = 1u128;
        let traffic: Vec<PacketRecord> = (0..1000u64)
            .map(|i| PacketRecord::tcp(i * 1000, scanner, 0xbeef, 1, 22, 60))
            .collect();
        let config = BackscatterConfig {
            lookup_probability: 1.0,
            cache_ttl_ms: 3_600_000,
            latency_ms: 0,
        };
        let queries = generate_backscatter(&traffic, &config, 2);
        // 1000 s of probes < 1 h TTL → exactly one query.
        assert_eq!(queries.len(), 1);
    }

    #[test]
    fn cache_expiry_allows_requery() {
        let scanner = 1u128;
        let traffic = vec![
            PacketRecord::tcp(0, scanner, 0xbeef, 1, 22, 60),
            PacketRecord::tcp(7_200_000, scanner, 0xbeef, 1, 22, 60),
        ];
        let config = BackscatterConfig {
            lookup_probability: 1.0,
            cache_ttl_ms: 3_600_000,
            latency_ms: 0,
        };
        assert_eq!(generate_backscatter(&traffic, &config, 3).len(), 2);
    }

    #[test]
    fn source_rotation_is_invisible_without_aggregation() {
        // The §2.2 lesson replayed at the DNS authority: a scanner rotating
        // /128s inside its /64 spreads its backscatter thin.
        let base = 0x2001_0db8_0000_0000_0000_0000_0000_0000u128;
        let traffic: Vec<PacketRecord> = (0..400u64)
            .map(|i| {
                PacketRecord::tcp(
                    i * 500,
                    base | u128::from(i),
                    (u128::from(i) << 80) | 1,
                    1,
                    22,
                    60,
                )
            })
            .collect();
        let config = BackscatterConfig {
            lookup_probability: 1.0,
            ..Default::default()
        };
        let queries = generate_backscatter(&traffic, &config, 4);
        let at128 = BackscatterDetector {
            agg_len: 128,
            min_queriers: 20,
        };
        assert!(at128.detect(&queries).is_empty(), "invisible per /128");
        let at64 = BackscatterDetector::default();
        let detected = at64.detect(&queries);
        assert_eq!(detected.len(), 1);
        assert_eq!(detected[0].source, Ipv6Prefix::new(base, 64));
        assert!(detected[0].queriers >= 300);
    }

    #[test]
    fn queries_are_time_sorted_with_latency() {
        let traffic = scan_traffic(7, 100);
        let queries = generate_backscatter(&traffic, &BackscatterConfig::default(), 5);
        assert!(queries.windows(2).all(|w| w[0].ts_ms <= w[1].ts_ms));
        assert!(
            queries.iter().all(|q| q.ts_ms % 500 == 50),
            "latency applied"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let traffic = scan_traffic(9, 300);
        let a = generate_backscatter(&traffic, &BackscatterConfig::default(), 7);
        let b = generate_backscatter(&traffic, &BackscatterConfig::default(), 7);
        assert_eq!(a, b);
        let c = generate_backscatter(&traffic, &BackscatterConfig::default(), 8);
        assert_ne!(a, c);
    }

    #[test]
    fn empty_traffic_empty_queries() {
        assert!(generate_backscatter(&[], &BackscatterConfig::default(), 1).is_empty());
        assert!(BackscatterDetector::default().detect(&[]).is_empty());
    }

    #[test]
    fn fleet_scanners_visible_via_backscatter() {
        // End to end: the calibrated fleet's heavy scanners are detectable
        // from the DNS authority's viewpoint alone.
        let mut cfg = lumen6_scanners::FleetConfig::small();
        cfg.end_day = 7;
        let world = lumen6_scanners::World::build(cfg);
        let trace = world.cdn_trace();
        let queries = generate_backscatter(&trace, &BackscatterConfig::default(), 11);
        let detected = BackscatterDetector {
            agg_len: 64,
            min_queriers: 30,
        }
        .detect(&queries);
        assert!(!detected.is_empty());
        // The top backscatter source is one of the heavy fleet scanners.
        let top = &detected[0];
        let owner = world
            .fleet
            .truth
            .iter()
            .find(|t| t.prefix.contains(&top.source));
        assert!(
            owner.is_some(),
            "top backscatter source {top:?} is a fleet scanner"
        );
        assert!(owner.unwrap().rank <= 3);
    }
}
