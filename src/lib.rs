//! # lumen6 — illuminating large-scale IPv6 scanning
//!
//! A full reproduction of *“Illuminating Large-Scale IPv6 Scanning in the
//! Internet”* (Richter, Gasser & Berger, IMC 2022) as a production-quality
//! Rust library: the paper's scan-detection methodology, the vantage-point
//! substrates it depends on (a CDN firewall telescope and a MAWI-style
//! transit link, both simulated), a calibrated scanner fleet reproducing
//! the paper's ground truth, and the analysis machinery behind every table
//! and figure.
//!
//! This crate is a facade: it re-exports the workspace crates under one
//! name. Depend on the individual `lumen6-*` crates to slim the tree.
//!
//! ## Quickstart
//!
//! ```
//! use lumen6::prelude::*;
//!
//! // Build a small simulated world: telescope + calibrated scanner fleet.
//! let world = World::build(FleetConfig::small());
//! let trace = world.cdn_trace();
//!
//! // The paper's pipeline: artifact prefilter, then scan detection.
//! let (clean, _report) = ArtifactFilter::default().filter(&trace);
//! let scans = detect(&clean, ScanDetectorConfig::paper(AggLevel::L64));
//! assert!(scans.scans() > 0);
//!
//! // Aggregation matters: /48 sources can exceed /64 sources when a
//! // scanner spreads across a routed prefix.
//! let at48 = detect(&clean, ScanDetectorConfig::paper(AggLevel::L48));
//! println!("/64 sources: {}  /48 sources: {}", scans.sources(), at48.sources());
//! ```
//!
//! ## Crate map
//!
//! | Module | Backing crate | Contents |
//! |---|---|---|
//! | [`addr`] | `lumen6-addr` | prefixes, radix trie, Hamming/IID analysis |
//! | [`trace`] | `lumen6-trace` | packet records, binary codec, sim time |
//! | [`netmodel`] | `lumen6-netmodel` | AS registry, allocations, LPM routing |
//! | [`telescope`] | `lumen6-telescope` | CDN deployment, capture filter, artifacts |
//! | [`scanners`] | `lumen6-scanners` | scanner actors and the Table-2 fleet |
//! | [`detect`] | `lumen6-detect` | scan detection, MAWI detector, adaptive IDS |
//! | [`analysis`] | `lumen6-analysis` | series, tables, targeting, concentration |
//! | [`mawi`] | `lumen6-mawi` | transit-link vantage with daily 15-min windows |
//! | [`report`] | `lumen6-report` | tables, CSV, paper-style formatting |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use lumen6_addr as addr;
pub use lumen6_analysis as analysis;
pub use lumen6_backscatter as backscatter;
pub use lumen6_detect as detect;
pub use lumen6_mawi as mawi;
pub use lumen6_netmodel as netmodel;
pub use lumen6_report as report;
pub use lumen6_scanners as scanners;
pub use lumen6_telescope as telescope;
pub use lumen6_trace as trace;

/// The most common imports in one place.
pub mod prelude {
    pub use lumen6_addr::{Ipv6Prefix, PrefixTrie};
    pub use lumen6_detect::detector::detect;
    pub use lumen6_detect::{
        AggLevel, ArtifactFilter, MawiDetector, ScanDetector, ScanDetectorConfig, ScanEvent,
        ScanReport,
    };
    pub use lumen6_netmodel::{AsType, InternetRegistry};
    pub use lumen6_scanners::{FleetConfig, ScannerActor, World};
    pub use lumen6_telescope::{CdnDeployment, DeploymentConfig, FirewallCapture};
    pub use lumen6_trace::{PacketRecord, SimTime, TraceReader, TraceWriter, Transport};
}
