//! Offline stand-in for `criterion`.
//!
//! Implements the harness surface this workspace's benches use:
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`], [`BenchmarkId`],
//! [`Throughput`], [`black_box`], and the `criterion_group!` /
//! `criterion_main!` macros. Measurement is simplified relative to real
//! criterion — each benchmark runs a warm-up pass then `sample_size` timed
//! samples, reporting the median per-iteration time (and throughput when
//! configured) to stdout. No statistical regression analysis or HTML
//! reports.

use std::fmt::Write as _;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched work.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// How work-per-iteration is expressed for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iterations process this many logical elements each.
    Elements(u64),
    /// Iterations process this many bytes each.
    Bytes(u64),
}

/// A benchmark identifier: function name plus optional parameter string.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id carrying only a parameter (the group supplies the name).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to benchmark closures; times the hot loop.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_count: u64,
    sample_target: Duration,
}

impl Bencher {
    /// Times `routine`, running it enough times for stable sampling.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // Warm-up & calibration: find an iteration count that makes one
        // sample take ~`sample_target` so Instant overhead stays
        // negligible.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= self.sample_target || iters >= 1 << 20 {
                break;
            }
            iters = iters.saturating_mul(2);
        }
        self.iters_per_sample = iters;
        self.samples.clear();
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }

    fn median_per_iter(&self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        sorted[sorted.len() / 2] / self.iters_per_sample.max(1) as u32
    }
}

fn human_time(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

fn report(name: &str, per_iter: Duration, throughput: Option<Throughput>) {
    let mut line = format!("bench {name:<50} {:>12}/iter", human_time(per_iter));
    if let Some(tp) = throughput {
        let secs = per_iter.as_secs_f64();
        if secs > 0.0 {
            match tp {
                Throughput::Elements(n) => {
                    let _ = write!(line, "  {:>14.0} elem/s", n as f64 / secs);
                }
                Throughput::Bytes(n) => {
                    let _ = write!(line, "  {:>10.3} MiB/s", n as f64 / secs / (1 << 20) as f64);
                }
            }
        }
    }
    println!("{line}");
}

/// The top-level harness handle.
pub struct Criterion {
    sample_count: u64,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_count: 10,
            measurement: Duration::from_millis(50),
        }
    }
}

impl Criterion {
    /// Sets the warm-up budget. Calibration already warms the routine, so
    /// this stand-in only keeps the builder shape.
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    /// Sets the total measurement budget per benchmark; each of the
    /// `sample_size` samples targets an equal share of it.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_count = n.max(1) as u64;
        self
    }

    fn sample_target(&self) -> Duration {
        (self.measurement / self.sample_count.max(1) as u32).max(Duration::from_millis(1))
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_count: self.sample_count,
            sample_target: self.sample_target(),
            throughput: None,
            _parent: std::marker::PhantomData,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(name, self.sample_count, self.sample_target(), None, f);
        self
    }
}

fn run_one(
    name: &str,
    sample_count: u64,
    sample_target: Duration,
    tp: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut b = Bencher {
        samples: Vec::new(),
        iters_per_sample: 1,
        sample_count,
        sample_target,
    };
    f(&mut b);
    report(name, b.median_per_iter(), tp);
}

/// A named group of benchmarks sharing throughput/sample configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_count: u64,
    sample_target: Duration,
    throughput: Option<Throughput>,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        // Real criterion requires >= 10; accept anything >= 1 here.
        self.sample_count = n.max(1) as u64;
        self
    }

    /// Declares per-iteration work for throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(
        &mut self,
        id: impl std::fmt::Display,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id);
        run_one(
            &name,
            self.sample_count,
            self.sample_target,
            self.throughput,
            f,
        );
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id);
        run_one(
            &name,
            self.sample_count,
            self.sample_target,
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

/// Collects benchmark functions into one runner.
#[macro_export]
macro_rules! criterion_group {
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $config;
            $($target(&mut c);)+
        }
    };
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        group.throughput(Throughput::Elements(100));
        group.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }
}
