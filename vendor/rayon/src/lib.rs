//! Offline stand-in for `rayon`: the `par_iter().map(..).collect()` shape
//! this workspace uses, implemented with `std::thread::scope` over
//! contiguous chunks. Order is preserved; the worker count follows
//! [`std::thread::available_parallelism`].

use std::num::NonZeroUsize;

/// Number of worker threads a parallel operation will use.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// The rayon-compatible import surface.
pub mod prelude {
    pub use crate::{IntoParallelRefIterator, ParIter, ParMap};
}

/// Types whose elements can be visited in parallel by reference.
pub trait IntoParallelRefIterator {
    /// Element type.
    type Elem: Sync;

    /// Returns a parallel iterator over `&self`'s elements.
    fn par_iter(&self) -> ParIter<'_, Self::Elem>;
}

impl<T: Sync> IntoParallelRefIterator for [T] {
    type Elem = T;

    fn par_iter(&self) -> ParIter<'_, T> {
        ParIter { items: self }
    }
}

impl<T: Sync> IntoParallelRefIterator for Vec<T> {
    type Elem = T;

    fn par_iter(&self) -> ParIter<'_, T> {
        ParIter { items: self }
    }
}

/// A pending parallel traversal of a slice.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Registers the per-element function.
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        F: Fn(&T) -> R + Sync,
        R: Send,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// A mapped parallel traversal, ready to collect.
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<T: Sync, F> ParMap<'_, T, F> {
    /// Runs the map across worker threads and gathers results in order.
    pub fn collect<C, R>(self) -> C
    where
        F: Fn(&T) -> R + Sync,
        R: Send,
        C: From<Vec<R>>,
    {
        C::from(parallel_map_slice(self.items, &self.f))
    }
}

/// Order-preserving parallel map over a slice using scoped threads.
pub fn parallel_map_slice<T: Sync, R: Send>(items: &[T], f: &(impl Fn(&T) -> R + Sync)) -> Vec<R> {
    let workers = current_num_threads().min(items.len().max(1));
    if workers <= 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }
    let chunk = items.len().div_ceil(workers);
    let mut chunks: Vec<Vec<R>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|part| scope.spawn(move || part.iter().map(f).collect::<Vec<R>>()))
            .collect();
        chunks = handles
            .into_iter()
            .map(|h| h.join().expect("parallel map worker panicked"))
            .collect();
    });
    let mut out = Vec::with_capacity(items.len());
    for c in chunks {
        out.extend(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::parallel_map_slice;
    use super::prelude::*;

    #[test]
    fn par_map_preserves_order() {
        let input: Vec<u64> = (0..10_000).collect();
        let out: Vec<u64> = input.par_iter().map(|x| x * 2).collect();
        assert_eq!(out, input.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = empty.par_iter().map(|x| *x).collect();
        assert!(out.is_empty());
        assert_eq!(parallel_map_slice(&[5u8], &|x| *x + 1), vec![6]);
    }
}
