//! Offline stand-in for `syn`: the exact subset `lumen6-analyzer` uses.
//!
//! The real `syn` crate is a full Rust parser built on `proc-macro2` token
//! streams. This build environment has no registry access, so — following
//! the workspace's vendoring convention — this stand-in implements only
//! what the analyzer consumes: a faithful *lexer* that turns Rust source
//! into a flat stream of spanned tokens (identifiers, literals,
//! punctuation, comments), plus small helpers for reading literal values.
//!
//! Fidelity matters for a lint driver: `unwrap` inside a string literal or
//! a doc comment must not trip a panic-freedom lint. The lexer therefore
//! handles the full literal grammar the workspace uses: nested block
//! comments, raw strings with arbitrary `#` counts, byte strings, char
//! literals vs. lifetimes, raw identifiers, and numeric literals with
//! suffixes.

#![forbid(unsafe_code)]

use std::fmt;

/// A 1-based source position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column (in characters).
    pub col: u32,
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Coarse token classification — everything a token-level lint needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// `foo`, `self`, keywords — any identifier-shaped word.
    Ident,
    /// `r#type` — raw identifier (text retains the `r#` prefix).
    RawIdent,
    /// `'a`, `'static`.
    Lifetime,
    /// Integer or float literal, suffix included.
    Number,
    /// `"..."` or `r"..."`/`r#"..."#` — text retains the quotes/hashes.
    Str,
    /// `b"..."` / `br#"..."#`.
    ByteStr,
    /// `'x'`, `'\n'`, `b'x'`.
    Char,
    /// A single punctuation character (`.`, `:`, `!`, `(`, …).
    Punct,
    /// `// …` including `///` and `//!` doc comments (text retains `//`).
    LineComment,
    /// `/* … */` including doc variants; nesting handled.
    BlockComment,
}

/// One lexed token with its source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// The exact source text of the token.
    pub text: String,
    /// Position of the token's first character.
    pub span: Span,
}

impl Token {
    /// True if this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// True if this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.starts_with(c)
    }

    /// True for line or block comments.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }

    /// For [`TokenKind::Str`] tokens: the literal's *value* (delimiters
    /// stripped, standard escapes decoded). `None` for other kinds.
    pub fn str_value(&self) -> Option<String> {
        if self.kind != TokenKind::Str {
            return None;
        }
        let t = &self.text;
        if let Some(rest) = t.strip_prefix('r') {
            // r"…" or r#"…"# — no escapes inside raw strings.
            let hashes = rest.chars().take_while(|&c| c == '#').count();
            let inner = &rest[hashes..];
            let inner = inner.strip_prefix('"')?;
            let inner = inner.strip_suffix(&format!("\"{}", "#".repeat(hashes)))?;
            return Some(inner.to_string());
        }
        let inner = t.strip_prefix('"')?.strip_suffix('"')?;
        let mut out = String::with_capacity(inner.len());
        let mut chars = inner.chars();
        while let Some(c) = chars.next() {
            if c != '\\' {
                out.push(c);
                continue;
            }
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some('r') => out.push('\r'),
                Some('0') => out.push('\0'),
                Some('\\') => out.push('\\'),
                Some('"') => out.push('"'),
                Some('\'') => out.push('\''),
                // \u{…}, \xNN and anything exotic: keep verbatim — lints
                // only compare against plain ASCII schemes.
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => out.push('\\'),
            }
        }
        Some(out)
    }
}

/// A lexing failure (unterminated literal or comment).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Where the offending construct started.
    pub span: Span,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.span, self.message)
    }
}

impl std::error::Error for LexError {}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn span(&self) -> Span {
        Span {
            line: self.line,
            col: self.col,
        }
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.src.get(self.pos).copied()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else if !(0x80..0xC0).contains(&b) {
            // Count a multi-byte UTF-8 sequence as one column: only the
            // leading byte advances the column.
            self.col += 1;
        }
        Some(b)
    }

    fn take_while(&mut self, f: impl Fn(u8) -> bool) {
        while let Some(b) = self.peek(0) {
            if !f(b) {
                break;
            }
            self.bump();
        }
    }

    fn text_from(&self, start: usize) -> String {
        String::from_utf8_lossy(&self.src[start..self.pos]).into_owned()
    }

    fn err(&self, span: Span, message: &str) -> LexError {
        LexError {
            span,
            message: message.to_string(),
        }
    }

    /// Consumes a double-quoted string body (opening quote already
    /// consumed), honoring backslash escapes.
    fn finish_quoted(&mut self, start_span: Span) -> Result<(), LexError> {
        loop {
            match self.bump() {
                Some(b'"') => return Ok(()),
                Some(b'\\') => {
                    self.bump();
                }
                Some(_) => {}
                None => return Err(self.err(start_span, "unterminated string literal")),
            }
        }
    }

    /// Consumes a raw string: caller consumed the `r`/`br` prefix; `self`
    /// is positioned at the first `#` or the opening quote.
    fn finish_raw(&mut self, start_span: Span) -> Result<(), LexError> {
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            hashes += 1;
            self.bump();
        }
        if self.bump() != Some(b'"') {
            return Err(self.err(start_span, "malformed raw string literal"));
        }
        loop {
            match self.bump() {
                Some(b'"') => {
                    let mut seen = 0usize;
                    while seen < hashes && self.peek(0) == Some(b'#') {
                        seen += 1;
                        self.bump();
                    }
                    if seen == hashes {
                        return Ok(());
                    }
                }
                Some(_) => {}
                None => return Err(self.err(start_span, "unterminated raw string literal")),
            }
        }
    }

    /// Consumes a char/byte literal body (opening `'` already consumed).
    fn finish_char(&mut self, start_span: Span) -> Result<(), LexError> {
        match self.bump() {
            Some(b'\\') => {
                self.bump();
                // \u{...} — consume through the closing brace.
                if self.peek(0) == Some(b'{') {
                    self.take_while(|b| b != b'}');
                    self.bump();
                }
            }
            Some(_) => {}
            None => return Err(self.err(start_span, "unterminated char literal")),
        }
        // Escapes like \x7f leave trailing hex digits before the quote.
        self.take_while(|b| b != b'\'' && b != b'\n');
        if self.bump() != Some(b'\'') {
            return Err(self.err(start_span, "unterminated char literal"));
        }
        Ok(())
    }

    fn number(&mut self) {
        // Integer part (covers 0x/0o/0b bodies and type suffixes).
        self.take_while(|b| b.is_ascii_alphanumeric() || b == b'_');
        // Fraction only when followed by a digit: `1..4` stays two tokens.
        if self.peek(0) == Some(b'.') && self.peek(1).is_some_and(|b| b.is_ascii_digit()) {
            self.bump();
            self.take_while(|b| b.is_ascii_alphanumeric() || b == b'_');
        }
        // Exponent sign: 1e-9 / 1E+9.
        if matches!(self.peek(0), Some(b'+') | Some(b'-'))
            && self
                .src
                .get(self.pos.wrapping_sub(1))
                .is_some_and(|&b| b == b'e' || b == b'E')
        {
            self.bump();
            self.take_while(|b| b.is_ascii_alphanumeric() || b == b'_');
        }
    }
}

/// Tokenizes Rust source, comments included.
pub fn tokenize(src: &str) -> Result<Vec<Token>, LexError> {
    let mut lx = Lexer::new(src);
    let mut out = Vec::new();
    loop {
        lx.take_while(|b| b.is_ascii_whitespace());
        let span = lx.span();
        let start = lx.pos;
        let Some(b) = lx.peek(0) else {
            return Ok(out);
        };
        let kind = match b {
            b'/' if lx.peek(1) == Some(b'/') => {
                lx.take_while(|b| b != b'\n');
                TokenKind::LineComment
            }
            b'/' if lx.peek(1) == Some(b'*') => {
                lx.bump();
                lx.bump();
                let mut depth = 1usize;
                loop {
                    match (lx.peek(0), lx.peek(1)) {
                        (Some(b'*'), Some(b'/')) => {
                            lx.bump();
                            lx.bump();
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        (Some(b'/'), Some(b'*')) => {
                            lx.bump();
                            lx.bump();
                            depth += 1;
                        }
                        (Some(_), _) => {
                            lx.bump();
                        }
                        (None, _) => return Err(lx.err(span, "unterminated block comment")),
                    }
                }
                TokenKind::BlockComment
            }
            b'"' => {
                lx.bump();
                lx.finish_quoted(span)?;
                TokenKind::Str
            }
            b'\'' => {
                // Lifetime vs char literal: 'a followed by another ident
                // char or not followed by a closing quote is a lifetime.
                let one = lx.peek(1);
                let two = lx.peek(2);
                let is_lifetime = match one {
                    Some(c) if is_ident_start(c) => two != Some(b'\''),
                    _ => false,
                };
                lx.bump();
                if is_lifetime {
                    lx.take_while(is_ident_continue);
                    TokenKind::Lifetime
                } else {
                    lx.finish_char(span)?;
                    TokenKind::Char
                }
            }
            b'r' if lx.peek(1) == Some(b'#') && lx.peek(2).is_some_and(is_ident_start) => {
                lx.bump();
                lx.bump();
                lx.take_while(is_ident_continue);
                TokenKind::RawIdent
            }
            b'r' if matches!(lx.peek(1), Some(b'"') | Some(b'#')) => {
                lx.bump();
                lx.finish_raw(span)?;
                TokenKind::Str
            }
            b'b' if lx.peek(1) == Some(b'"') => {
                lx.bump();
                lx.bump();
                lx.finish_quoted(span)?;
                TokenKind::ByteStr
            }
            b'b' if lx.peek(1) == Some(b'\'') => {
                lx.bump();
                lx.bump();
                lx.finish_char(span)?;
                TokenKind::Char
            }
            b'b' if lx.peek(1) == Some(b'r') && matches!(lx.peek(2), Some(b'"') | Some(b'#')) => {
                lx.bump();
                lx.bump();
                lx.finish_raw(span)?;
                TokenKind::ByteStr
            }
            c if is_ident_start(c) => {
                lx.take_while(is_ident_continue);
                TokenKind::Ident
            }
            c if c.is_ascii_digit() => {
                lx.number();
                TokenKind::Number
            }
            _ => {
                lx.bump();
                TokenKind::Punct
            }
        };
        out.push(Token {
            kind,
            text: lx.text_from(start),
            span,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        tokenize(src)
            .unwrap()
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn idents_and_puncts() {
        let t = kinds("x.unwrap()");
        assert_eq!(t[0], (TokenKind::Ident, "x".into()));
        assert_eq!(t[1], (TokenKind::Punct, ".".into()));
        assert_eq!(t[2], (TokenKind::Ident, "unwrap".into()));
        assert_eq!(t[3], (TokenKind::Punct, "(".into()));
    }

    #[test]
    fn strings_do_not_leak_idents() {
        let t = kinds(r#"let s = "call .unwrap() here";"#);
        assert!(!t
            .iter()
            .any(|(k, x)| *k == TokenKind::Ident && x == "unwrap"));
        assert_eq!(t.iter().filter(|(k, _)| *k == TokenKind::Str).count(), 1);
    }

    #[test]
    fn raw_strings_with_hashes() {
        let t = kinds(r##"r#"inner "quoted" text"# x"##);
        assert_eq!(t[0].0, TokenKind::Str);
        assert_eq!(t[1], (TokenKind::Ident, "x".into()));
    }

    #[test]
    fn str_value_unescapes() {
        let t = tokenize(r#""a\nb""#).unwrap();
        assert_eq!(t[0].str_value().unwrap(), "a\nb");
        let t = tokenize(r###"r#"a"b"#"###).unwrap();
        assert_eq!(t[0].str_value().unwrap(), "a\"b");
    }

    #[test]
    fn lifetimes_vs_chars() {
        let t = kinds("&'a str; 'x'; '\\n'; b'z'");
        assert_eq!(t[1], (TokenKind::Lifetime, "'a".into()));
        assert!(t.iter().filter(|(k, _)| *k == TokenKind::Char).count() == 3);
    }

    #[test]
    fn comments_nested_and_doc() {
        let t = kinds("/* a /* b */ c */ /// doc .unwrap()\ncode");
        assert_eq!(t[0].0, TokenKind::BlockComment);
        assert_eq!(t[1].0, TokenKind::LineComment);
        assert_eq!(t[2], (TokenKind::Ident, "code".into()));
    }

    #[test]
    fn spans_are_one_based_lines() {
        let t = tokenize("a\n  b").unwrap();
        assert_eq!((t[0].span.line, t[0].span.col), (1, 1));
        assert_eq!((t[1].span.line, t[1].span.col), (2, 3));
    }

    #[test]
    fn numbers_do_not_swallow_ranges() {
        let t = kinds("0..16");
        assert_eq!(t[0], (TokenKind::Number, "0".into()));
        assert_eq!(t[1].0, TokenKind::Punct);
        assert_eq!(t[2].0, TokenKind::Punct);
        assert_eq!(t[3], (TokenKind::Number, "16".into()));
    }

    #[test]
    fn float_with_exponent_and_suffix() {
        let t = kinds("1.5e-9f64 2u32");
        assert_eq!(t[0], (TokenKind::Number, "1.5e-9f64".into()));
        assert_eq!(t[1], (TokenKind::Number, "2u32".into()));
    }

    #[test]
    fn raw_identifier() {
        let t = kinds("r#type");
        assert_eq!(t[0], (TokenKind::RawIdent, "r#type".into()));
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(tokenize("\"abc").is_err());
        assert!(tokenize("/* abc").is_err());
    }
}
