//! Offline stand-in for `serde_derive`.
//!
//! Generates `Serialize`/`Deserialize` impls for the vendored value-tree
//! `serde` crate. The parser is hand-rolled over `proc_macro::TokenStream`
//! (no `syn`/`quote` in the offline build) and supports exactly the shapes
//! this workspace derives on: non-generic structs (named, tuple, unit) and
//! enums (unit, newtype, tuple, struct variants), with no `#[serde]`
//! attributes. Representations match real serde's defaults: plain objects
//! for structs, inner value for newtypes, externally tagged enums.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One parsed field: a name for named fields, an index for tuple fields.
enum Fields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derives `serde::Serialize` for a struct or enum.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize` for a struct or enum.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Item {
    let mut toks = input.into_iter().peekable();
    skip_attrs_and_vis(&mut toks);
    let kw = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected `struct` or `enum`, got {other:?}"),
    };
    let name = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected item name, got {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = toks.peek() {
        if p.as_char() == '<' {
            panic!("derive(Serialize/Deserialize) stub does not support generic type `{name}`");
        }
    }
    match kw.as_str() {
        "struct" => {
            let fields = match toks.next() {
                None => Fields::Unit,
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(named_field_names(g.stream()))
                }
                other => panic!("unexpected token after struct name: {other:?}"),
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let body = match toks.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("expected enum body, got {other:?}"),
            };
            Item::Enum {
                name,
                variants: parse_variants(body),
            }
        }
        other => panic!("cannot derive for `{other}` items"),
    }
}

/// Skips leading `#[...]` attributes (incl. doc comments) and visibility.
fn skip_attrs_and_vis(toks: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    loop {
        match toks.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next();
                toks.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                toks.next();
                if let Some(TokenTree::Group(g)) = toks.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        toks.next(); // pub(crate) etc.
                    }
                }
            }
            _ => return,
        }
    }
}

/// Counts top-level comma-separated segments, ignoring commas nested in
/// `<...>` (groups already hide parens/brackets/braces from this level).
fn count_tuple_fields(body: TokenStream) -> usize {
    let mut fields = 0usize;
    let mut seen_any = false;
    let mut angle = 0i32;
    for t in body {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                fields += 1;
                seen_any = false;
            }
            _ => seen_any = true,
        }
    }
    fields + usize::from(seen_any)
}

/// Extracts the field names of a named-field body.
fn named_field_names(body: TokenStream) -> Vec<String> {
    let mut names = Vec::new();
    let mut toks = body.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut toks);
        match toks.next() {
            Some(TokenTree::Ident(id)) => names.push(id.to_string()),
            None => break,
            other => panic!("expected field name, got {other:?}"),
        }
        // Skip `: Type` up to the next top-level comma.
        let mut angle = 0i32;
        for t in toks.by_ref() {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => break,
                _ => {}
            }
        }
    }
    names
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut toks = body.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut toks);
        let name = match toks.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("expected variant name, got {other:?}"),
        };
        let fields = match toks.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                toks.next();
                Fields::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let names = named_field_names(g.stream());
                toks.next();
                Fields::Named(names)
            }
            _ => Fields::Unit,
        };
        // Skip any discriminant (`= expr`) up to the separating comma.
        for t in toks.by_ref() {
            if let TokenTree::Punct(p) = &t {
                if p.as_char() == ',' {
                    break;
                }
            }
        }
        variants.push(Variant { name, fields });
    }
    variants
}

// ------------------------------------------------------------- generation

const VALUE: &str = "::serde::value::Value";
const DE_ERR: &str = "::serde::value::DeError";

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => format!("{VALUE}::Null"),
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("{VALUE}::Array(vec![{}])", items.join(", "))
                }
                Fields::Named(names) => obj_literal(names.iter().map(|f| {
                    (
                        f.clone(),
                        format!("::serde::Serialize::to_value(&self.{f})"),
                    )
                })),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> {VALUE} {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vn} => {VALUE}::Str(::std::string::String::from(\"{vn}\")),"
                        ),
                        Fields::Tuple(1) => format!(
                            "{name}::{vn}(f0) => {VALUE}::Object(vec![(::std::string::String::from(\"{vn}\"), ::serde::Serialize::to_value(f0))]),"
                        ),
                        Fields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => {VALUE}::Object(vec![(::std::string::String::from(\"{vn}\"), {VALUE}::Array(vec![{}]))]),",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        Fields::Named(fs) => {
                            let inner = obj_literal(
                                fs.iter()
                                    .map(|f| (f.clone(), format!("::serde::Serialize::to_value({f})"))),
                            );
                            format!(
                                "{name}::{vn} {{ {} }} => {VALUE}::Object(vec![(::std::string::String::from(\"{vn}\"), {inner})]),",
                                fs.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> {VALUE} {{ match self {{ {} }} }}\n\
                 }}",
                arms.join("\n")
            )
        }
    }
}

/// `Value::Object(vec![("name", expr), ...])`
fn obj_literal(fields: impl Iterator<Item = (String, String)>) -> String {
    let items: Vec<String> = fields
        .map(|(name, expr)| format!("(::std::string::String::from(\"{name}\"), {expr})"))
        .collect();
    format!("{VALUE}::Object(vec![{}])", items.join(", "))
}

/// Lookup + deserialize of one named field out of `fields`.
fn named_field_get(owner: &str, field: &str) -> String {
    format!(
        "{field}: match fields.iter().find(|(k, _)| k == \"{field}\") {{\n\
             Some((_, fv)) => ::serde::Deserialize::from_value(fv)?,\n\
             None => return ::core::result::Result::Err({DE_ERR}::msg(\"missing field `{field}` in {owner}\")),\n\
         }},"
    )
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => format!(
                    "match v {{\n\
                         {VALUE}::Null => ::core::result::Result::Ok({name}),\n\
                         other => ::core::result::Result::Err({DE_ERR}::expected(\"null for {name}\", other)),\n\
                     }}"
                ),
                Fields::Tuple(1) => format!(
                    "::core::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))"
                ),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                        .collect();
                    format!(
                        "match v {{\n\
                             {VALUE}::Array(items) if items.len() == {n} => ::core::result::Result::Ok({name}({})),\n\
                             other => ::core::result::Result::Err({DE_ERR}::expected(\"array of {n} for {name}\", other)),\n\
                         }}",
                        items.join(", ")
                    )
                }
                Fields::Named(names) => {
                    let gets: Vec<String> =
                        names.iter().map(|f| named_field_get(name, f)).collect();
                    format!(
                        "match v {{\n\
                             {VALUE}::Object(fields) => ::core::result::Result::Ok({name} {{ {} }}),\n\
                             other => ::core::result::Result::Err({DE_ERR}::expected(\"object for {name}\", other)),\n\
                         }}",
                        gets.join("\n")
                    )
                }
            };
            impl_deserialize(name, &body)
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| {
                    format!(
                        "{VALUE}::Str(s) if s == \"{vn}\" => ::core::result::Result::Ok({name}::{vn}),",
                        vn = v.name
                    )
                })
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter(|v| !matches!(v.fields, Fields::Unit))
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => unreachable!(),
                        Fields::Tuple(1) => format!(
                            "\"{vn}\" => ::core::result::Result::Ok({name}::{vn}(::serde::Deserialize::from_value(inner)?)),"
                        ),
                        Fields::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                                .collect();
                            format!(
                                "\"{vn}\" => match inner {{\n\
                                     {VALUE}::Array(items) if items.len() == {n} => ::core::result::Result::Ok({name}::{vn}({})),\n\
                                     other => ::core::result::Result::Err({DE_ERR}::expected(\"array of {n} for {name}::{vn}\", other)),\n\
                                 }},",
                                items.join(", ")
                            )
                        }
                        Fields::Named(fs) => {
                            let gets: Vec<String> = fs
                                .iter()
                                .map(|f| named_field_get(&format!("{name}::{vn}"), f))
                                .collect();
                            format!(
                                "\"{vn}\" => match inner {{\n\
                                     {VALUE}::Object(fields) => ::core::result::Result::Ok({name}::{vn} {{ {} }}),\n\
                                     other => ::core::result::Result::Err({DE_ERR}::expected(\"object for {name}::{vn}\", other)),\n\
                                 }},",
                                gets.join("\n")
                            )
                        }
                    }
                })
                .collect();
            let body = format!(
                "match v {{\n\
                     {unit}\n\
                     {VALUE}::Object(fields) if fields.len() == 1 => {{\n\
                         let (tag, inner) = &fields[0];\n\
                         let _ = inner;\n\
                         match tag.as_str() {{\n\
                             {tagged}\n\
                             other => ::core::result::Result::Err({DE_ERR}::msg(format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                         }}\n\
                     }}\n\
                     other => ::core::result::Result::Err({DE_ERR}::expected(\"variant of {name}\", other)),\n\
                 }}",
                unit = unit_arms.join("\n"),
                tagged = tagged_arms.join("\n"),
            );
            impl_deserialize(name, &body)
        }
    }
}

fn impl_deserialize(name: &str, body: &str) -> String {
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &{VALUE}) -> ::core::result::Result<Self, {DE_ERR}> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}
