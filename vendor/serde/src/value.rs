//! The JSON-shaped value tree the vendored serde stack serializes through.

use std::fmt;

/// A dynamically-typed value: the intermediate representation between
/// Rust types and JSON text.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (covers the full `u128` range so IPv6
    /// addresses round-trip exactly).
    UInt(u128),
    /// A negative integer.
    Int(i128),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An object; insertion order is preserved so output is deterministic.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Whether this value is an array.
    pub fn is_array(&self) -> bool {
        matches!(self, Value::Array(_))
    }

    /// Whether this value is an object.
    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Looks up an object field by name.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// A short name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::UInt(_) | Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialization error: what was expected and what was found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// An error with a fixed message.
    pub fn msg(m: impl Into<String>) -> Self {
        DeError(m.into())
    }

    /// An "expected X, found Y" error.
    pub fn expected(what: &str, found: &Value) -> Self {
        DeError(format!("expected {what}, found {}", found.kind()))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}
