//! Offline stand-in for `serde`: a value-tree serialization framework.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the serde surface it uses: `#[derive(Serialize, Deserialize)]` plus the
//! two traits, backed by a JSON-shaped [`value::Value`] tree instead of
//! serde's visitor machinery. The companion `serde_json` stub renders and
//! parses that tree. The derive macro (in `serde_derive`) generates
//! externally-tagged enum representations and plain-object structs,
//! matching what real serde would emit for the derives in this workspace
//! (which use no field attributes).

pub use serde_derive::{Deserialize, Serialize};

pub mod value;

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::hash::Hash;
use value::{DeError, Value};

/// Types that can render themselves as a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` to a value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u128)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::UInt(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::msg(concat!("integer out of range for ", stringify!($t)))),
                    Value::Int(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::msg(concat!("integer out of range for ", stringify!($t)))),
                    other => Err(DeError::expected(stringify!($t), other)),
                }
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, u128, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                if *self >= 0 {
                    Value::UInt(*self as u128)
                } else {
                    Value::Int(*self as i128)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::UInt(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::msg(concat!("integer out of range for ", stringify!($t)))),
                    Value::Int(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::msg(concat!("integer out of range for ", stringify!($t)))),
                    other => Err(DeError::expected(stringify!($t), other)),
                }
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, i128, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::UInt(n) => Ok(*n as $t),
                    Value::Int(n) => Ok(*n as $t),
                    other => Err(DeError::expected("number", other)),
                }
            }
        }
    )*};
}
impl_serde_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::expected("single-character string", other)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = Vec::<T>::from_value(v)?;
        let n = items.len();
        <[T; N]>::try_from(items)
            .map_err(move |_| DeError::msg(format!("expected array of length {N}, got {n}")))
    }
}

// Set and map impls are generic over the hasher so user code can swap in
// deterministic hashers (e.g. an FxHash BuildHasher) without losing serde.
impl<T: Serialize + Eq + Hash, S: std::hash::BuildHasher> Serialize for HashSet<T, S> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Eq + Hash, S: std::hash::BuildHasher + Default> Deserialize
    for HashSet<T, S>
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("array", other)),
        }
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("array", other)),
        }
    }
}

// Maps serialize as arrays of [key, value] pairs. Real serde_json requires
// string keys for JSON objects; this workspace's maps are keyed by tuples
// and prefixes, so the pair-array representation keeps round-trips exact
// without a key-to-string convention.
impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        pairs(v)?
            .map(|kv| kv.and_then(|(k, v)| Ok((K::from_value(k)?, V::from_value(v)?))))
            .collect()
    }
}

impl<K: Serialize, V: Serialize, S: std::hash::BuildHasher> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize, S: std::hash::BuildHasher + Default> Deserialize
    for HashMap<K, V, S>
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        pairs(v)?
            .map(|kv| kv.and_then(|(k, v)| Ok((K::from_value(k)?, V::from_value(v)?))))
            .collect()
    }
}

/// Iterates the `[key, value]` pair encoding used for maps.
#[allow(clippy::type_complexity)]
fn pairs(v: &Value) -> Result<impl Iterator<Item = Result<(&Value, &Value), DeError>>, DeError> {
    match v {
        Value::Array(items) => Ok(items.iter().map(|item| match item {
            Value::Array(kv) if kv.len() == 2 => Ok((&kv[0], &kv[1])),
            other => Err(DeError::expected("[key, value] pair", other)),
        })),
        other => Err(DeError::expected("array of pairs", other)),
    }
}

macro_rules! impl_serde_tuple {
    ($(($($t:ident : $i:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$i.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                const LEN: usize = 0 $(+ { let _ = $i; 1 })+;
                match v {
                    Value::Array(items) if items.len() == LEN => {
                        Ok(($($t::from_value(&items[$i])?,)+))
                    }
                    other => Err(DeError::expected("tuple array", other)),
                }
            }
        }
    )*};
}
impl_serde_tuple! {
    (A:0)
    (A:0, B:1)
    (A:0, B:1, C:2)
    (A:0, B:1, C:2, D:3)
    (A:0, B:1, C:2, D:3, E:4)
    (A:0, B:1, C:2, D:3, E:4, F:5)
    (A:0, B:1, C:2, D:3, E:4, F:5, G:6)
    (A:0, B:1, C:2, D:3, E:4, F:5, G:6, H:7)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        for n in [0u64, 1, u64::MAX] {
            assert_eq!(u64::from_value(&n.to_value()).unwrap(), n);
        }
        assert_eq!(i64::from_value(&(-5i64).to_value()).unwrap(), -5);
        assert_eq!(u128::from_value(&u128::MAX.to_value()).unwrap(), u128::MAX);
        assert!(u8::from_value(&300u64.to_value()).is_err());
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(String::from_value(&"hi".to_value()).unwrap(), "hi");
    }

    #[test]
    fn container_roundtrips() {
        let v = vec![(1u64, 2u8), (3, 4)];
        assert_eq!(Vec::<(u64, u8)>::from_value(&v.to_value()).unwrap(), v);
        let o: Option<u64> = None;
        assert_eq!(Option::<u64>::from_value(&o.to_value()).unwrap(), o);
        let m: BTreeMap<(u8, u16), u64> = [((1, 2), 3)].into_iter().collect();
        assert_eq!(BTreeMap::from_value(&m.to_value()).unwrap(), m);
        let s: HashSet<u128> = [7u128, 9].into_iter().collect();
        assert_eq!(HashSet::<u128>::from_value(&s.to_value()).unwrap(), s);
    }
}
