//! Offline stand-in for the `bytes` crate: the cursor/builder subset the
//! trace codec uses, over plain `Vec<u8>` storage (no refcounted slabs —
//! traces are decoded through one owner at a time here).

/// Read-side cursor operations.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Whether any bytes are left.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte, advancing the cursor. Panics past the end.
    fn get_u8(&mut self) -> u8;

    /// Reads a big-endian `u128`, advancing the cursor.
    fn get_u128(&mut self) -> u128;

    /// Copies `dst.len()` bytes out, advancing the cursor.
    fn copy_to_slice(&mut self, dst: &mut [u8]);
}

/// Write-side builder operations.
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);

    /// Appends a big-endian `u128`.
    fn put_u128(&mut self, v: u128);

    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);
}

/// An immutable byte buffer with a read cursor.
#[derive(Debug, Clone, Default)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Length of the unread remainder.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Whether the unread remainder is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data, pos: 0 }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes {
            data: data.to_vec(),
            pos: 0,
        }
    }
}

impl Buf for Bytes {
    #[inline]
    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    #[inline]
    fn get_u8(&mut self) -> u8 {
        let v = self.data[self.pos];
        self.pos += 1;
        v
    }

    #[inline]
    fn get_u128(&mut self) -> u128 {
        let end = self.pos + 16;
        let v = u128::from_be_bytes(self.data[self.pos..end].try_into().expect("16 bytes"));
        self.pos = end;
        v
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        let end = self.pos + dst.len();
        dst.copy_from_slice(&self.data[self.pos..end]);
        self.pos = end;
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Clears the buffer, keeping capacity.
    pub fn clear(&mut self) {
        self.data.clear();
    }
}

impl BufMut for BytesMut {
    #[inline]
    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    #[inline]
    fn put_u128(&mut self, v: u128) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }

    #[inline]
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_through_cursor() {
        let mut w = BytesMut::with_capacity(8);
        w.put_u8(7);
        w.put_u128(u128::MAX - 1);
        w.put_slice(&[1, 2, 3]);
        assert_eq!(w.len(), 1 + 16 + 3);

        let mut r = Bytes::from(w.to_vec());
        assert!(r.has_remaining());
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u128(), u128::MAX - 1);
        let mut three = [0u8; 3];
        r.copy_to_slice(&mut three);
        assert_eq!(three, [1, 2, 3]);
        assert!(!r.has_remaining());
    }
}
