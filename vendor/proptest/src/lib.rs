//! Offline stand-in for `proptest`.
//!
//! Supports the surface this workspace's property tests use: the
//! [`proptest!`] macro, [`Strategy`] with `prop_map`/`boxed`,
//! integer-range and `any::<T>()` strategies, tuples, [`collection::vec`],
//! [`Just`], and [`prop_oneof!`]. Differences from real proptest: cases are
//! generated from a fixed deterministic seed (no persistence files needed)
//! and failing cases are reported without shrinking.

/// Default number of random cases each property runs.
pub const NUM_CASES: u32 = 256;

/// Case count for this process: [`NUM_CASES`] unless the `PROPTEST_CASES`
/// environment variable overrides it (as in real proptest), letting CI's
/// deep-test job run more cases than the default developer loop.
pub fn num_cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(NUM_CASES)
}

pub mod test_runner {
    //! The deterministic case generator.

    /// xoshiro256++ with SplitMix64 seeding — the same generator family the
    //  vendored `rand` uses, duplicated to keep this crate dependency-free.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// The fixed seed all property tests run from.
        pub fn default_seed() -> Self {
            Self::from_seed(0x6c75_6d65_6e36_7074) // "lumen6pt"
        }

        /// Seeds deterministically from one word.
        pub fn from_seed(seed: u64) -> Self {
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            TestRng {
                s: [next(), next(), next(), next()],
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Next random `u128`.
        pub fn next_u128(&mut self) -> u128 {
            (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64())
        }
    }
}

pub mod strategy;

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A strategy for `Vec`s with lengths drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generates vectors of `element` values with a length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "collection::vec: empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + (rng.next_u64() % span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The glob-import surface.

    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy, Union};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests: each function runs [`num_cases()`] times over
/// freshly generated inputs.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut rng = $crate::test_runner::TestRng::default_seed();
                let cases = $crate::num_cases();
                for case in 0..cases {
                    let result: ::std::result::Result<(), ::std::string::String> = {
                        let ($($pat,)+) = (
                            $($crate::strategy::Strategy::generate(&($strat), &mut rng),)+
                        );
                        #[allow(clippy::redundant_closure_call)]
                        (move || -> ::std::result::Result<(), ::std::string::String> {
                            $body;
                            ::std::result::Result::Ok(())
                        })()
                    };
                    if let ::std::result::Result::Err(msg) = result {
                        panic!(
                            "property {} failed at case {}/{}:\n{}",
                            stringify!($name), case, cases, msg
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(
                format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($a), stringify!($b), a, b
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} == {} ({})\n  left: {:?}\n right: {:?}",
                stringify!($a), stringify!($b), format!($($fmt)+), a, b
            ));
        }
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                a
            ));
        }
    }};
}

/// Chooses uniformly between several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
