//! Value-generation strategies.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Derives a strategy that post-processes generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Box::new(self),
        }
    }
}

// Strategies are generated through shared references inside the `proptest!`
// macro, so references delegate.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// A strategy whose concrete type has been erased.
pub struct BoxedStrategy<T> {
    inner: Box<dyn Strategy<Value = T>>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// A mapped strategy (see [`Strategy::prop_map`]).
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Chooses uniformly among several boxed strategies (see `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = (rng.next_u64() % self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

/// Generates any value of `T` (uniform over the whole domain).
pub fn any<T: Arbitrary>() -> ArbitraryStrategy<T> {
    ArbitraryStrategy(std::marker::PhantomData)
}

/// The strategy returned by [`any`].
pub struct ArbitraryStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for ArbitraryStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Types with a canonical uniform generator.
pub trait Arbitrary {
    /// Generates one uniform value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        rng.next_u128()
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> i128 {
        rng.next_u128() as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

// Uniform sampling over integer ranges; spans are widened to u128 so even
// full-domain u64 ranges stay exact.
macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                (self.start as u128).wrapping_add(rng.next_u128() % span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range strategy");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                if span == 0 {
                    // Full u128 domain.
                    return rng.next_u128() as $t;
                }
                (lo as u128).wrapping_add(rng.next_u128() % span) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, u128);

// Signed ranges shift through the offset-from-start representation so the
// modulo stays over an unsigned span.
macro_rules! impl_signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                (self.start as i128).wrapping_add((rng.next_u128() % span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range strategy");
                let span = ((hi as i128).wrapping_sub(lo as i128) as u128).wrapping_add(1);
                (lo as i128).wrapping_add((rng.next_u128() % span) as i128) as $t
            }
        }
    )*};
}

impl_signed_range_strategy!(i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::default_seed();
        for _ in 0..1000 {
            let v = (10u64..20).generate(&mut rng);
            assert!((10..20).contains(&v));
            let w = (0u128..=u128::MAX).generate(&mut rng);
            let _ = w;
            let s = (-5i32..=5).generate(&mut rng);
            assert!((-5..=5).contains(&s));
        }
    }

    #[test]
    fn map_and_union() {
        let mut rng = TestRng::default_seed();
        let strat = crate::prop_oneof![(0u8..10).prop_map(|v| v as u32), Just(99u32),];
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!(v < 10 || v == 99);
        }
    }

    #[test]
    fn tuples_compose() {
        let mut rng = TestRng::default_seed();
        let (a, b, c) =
            (0u8..4, crate::collection::vec(0u16..3, 1..4), Just(true)).generate(&mut rng);
        assert!(a < 4);
        assert!(!b.is_empty() && b.len() < 4);
        assert!(c);
    }
}
