//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of `rand` it actually uses: [`rngs::SmallRng`]
//! seeded via [`SeedableRng::seed_from_u64`], and the [`Rng`] extension
//! methods `gen`, `gen_range`, and `gen_bool`. The generator is
//! xoshiro256++ seeded through SplitMix64 — statistically solid for
//! simulation workloads, deliberately not cryptographic (neither is the
//! real `SmallRng`).
//!
//! Streams differ from upstream `rand`'s, which is fine here: nothing in
//! the workspace pins exact upstream sequences, only determinism for a
//! given seed, which this crate guarantees.

/// Low-level generator interface: a source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling a value of a type from raw random words (the `Standard`
/// distribution of real `rand`, collapsed to one trait).
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for i128 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample_standard(rng) as i128
    }
}

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as $wide;
                // Modulo draw; bias is negligible for simulation use
                // (span << 2^64 in every call site).
                self.start + (<$wide as Standard>::sample_standard(rng) % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return <$t as Standard>::sample_standard(rng);
                }
                let span = (hi - lo) as $wide + 1;
                lo + (<$wide as Standard>::sample_standard(rng) % span) as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64, u128 => u128);

macro_rules! impl_sample_range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u);
                self.start.wrapping_add((<$u as Standard>::sample_standard(rng) % span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as $u).wrapping_sub(lo as $u).wrapping_add(1);
                if span == 0 {
                    return <$t as Standard>::sample_standard(rng);
                }
                lo.wrapping_add((<$u as Standard>::sample_standard(rng) % span) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(i8 => u64, i16 => u64, i32 => u64, i64 => u64, isize => u64);

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// High-level convenience methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Draws one uniformly distributed value of `T`.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws one value uniformly from `range`.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of [0,1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as the reference xoshiro seeding does.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(0u8..=128);
            assert!(w <= 128);
            let x = r.gen_range(5i64..6);
            assert_eq!(x, 5);
            let y = r.gen_range(0..1u128 << 100);
            assert!(y < 1u128 << 100);
        }
    }

    #[test]
    fn gen_range_covers_span() {
        let mut r = SmallRng::seed_from_u64(3);
        let seen: std::collections::HashSet<u16> =
            (0..5_000).map(|_| r.gen_range(0u16..8)).collect();
        assert_eq!(seen.len(), 8);
    }

    #[test]
    fn gen_bool_rate() {
        let mut r = SmallRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let v: f64 = r.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }
}
