//! Offline stand-in for `serde_json`: renders and parses JSON text over the
//! vendored `serde` value tree.
//!
//! Covers the API this workspace uses: [`to_string`], [`to_string_pretty`],
//! [`from_str`], and [`Value`]. Integers carry full `u128`/`i128` precision
//! (IPv6 addresses in JSON round-trip exactly); floats render via Rust's
//! shortest-round-trip `Display`.

use serde::{Deserialize, Serialize};
use std::fmt;

pub use serde::value::Value;

/// Error from serializing or parsing JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value to human-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses a value from JSON text.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    T::from_value(&v).map_err(|e| Error::new(e.to_string()))
}

// ------------------------------------------------------------- rendering

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_json_string(out, s),
        Value::Array(items) => write_seq(out, items.iter(), indent, depth, ('[', ']'), write_value),
        Value::Object(fields) => write_seq(
            out,
            fields.iter(),
            indent,
            depth,
            ('{', '}'),
            |out, (k, v), indent, depth| {
                write_json_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, v, indent, depth);
            },
        ),
    }
}

fn write_seq<I: ExactSizeIterator>(
    out: &mut String,
    items: I,
    indent: Option<usize>,
    depth: usize,
    (open, close): (char, char),
    mut write_item: impl FnMut(&mut String, I::Item, Option<usize>, usize),
) {
    out.push(open);
    let n = items.len();
    for (i, item) in items.enumerate() {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        write_item(out, item, indent, depth + 1);
        if i + 1 < n {
            out.push(',');
        }
    }
    if n > 0 {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * depth));
        }
    }
    out.push(close);
}

fn write_float(out: &mut String, f: f64) {
    if f.is_finite() {
        let s = f.to_string();
        out.push_str(&s);
        // Keep the value recognizably a float on re-parse.
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        // JSON has no NaN/Inf; serde_json writes null.
        out.push_str("null");
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// --------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.parse_lit("null", Value::Null),
            Some(b't') => self.parse_lit("true", Value::Bool(true)),
            Some(b'f') => self.parse_lit("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(Error::new(format!(
                "unexpected character `{}` at offset {}",
                c as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn parse_lit(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error::new(format!(
                "invalid literal at offset {}",
                self.pos
            )))
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if let Some(mag) = text.strip_prefix('-') {
            // Negative integer: parse magnitude wide, negate as i128.
            mag.parse::<u128>()
                .ok()
                .and_then(|m| i128::try_from(m).ok().map(|m| Value::Int(-m)))
                .ok_or_else(|| Error::new(format!("invalid number `{text}`")))
        } else {
            text.parse::<u128>()
                .map(Value::UInt)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("invalid escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_roundtrip() {
        let v = Value::Object(vec![
            ("a".into(), Value::UInt(u128::MAX)),
            (
                "b".into(),
                Value::Array(vec![Value::Null, Value::Bool(true)]),
            ),
            ("c".into(), Value::Str("x\"\n\\y".into())),
            ("d".into(), Value::Int(-42)),
            ("e".into(), Value::Float(0.25)),
        ]);
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
        let pretty = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn typed_roundtrip() {
        let x: Vec<(u64, Option<String>)> = vec![(1, None), (2, Some("hi".into()))];
        let back: Vec<(u64, Option<String>)> = from_str(&to_string(&x).unwrap()).unwrap();
        assert_eq!(x, back);
    }

    #[test]
    fn float_roundtrips_exactly() {
        for f in [0.1f64, 1.0, 1e-9, 123456.789, -2.5] {
            let back: f64 = from_str(&to_string(&f).unwrap()).unwrap();
            assert_eq!(f, back);
        }
    }

    #[test]
    fn garbage_is_error_not_panic() {
        assert!(from_str::<Value>("{not json").is_err());
        assert!(from_str::<Value>("").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }

    #[test]
    fn u128_precision_preserved() {
        let n = 0x2001_0db8_0000_0000_0000_0000_0000_0001u128;
        let back: u128 = from_str(&to_string(&n).unwrap()).unwrap();
        assert_eq!(n, back);
    }
}
